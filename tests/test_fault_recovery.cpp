// Fault-tolerant collection: agents fail and come back, and the collector
// must quarantine (not blacklist) them, keep answering from degraded
// topology, annotate answers with staleness, and recover fully — the
// operational behavior §6.2's field reports demand.
#include <gtest/gtest.h>

#include <map>

#include "apps/testbed.hpp"
#include "core/modeler.hpp"
#include "core/snmp_collector.hpp"
#include "fault_injection.hpp"
#include "sim/metrics.hpp"

namespace remos::core {
namespace {

namespace ftest = remos::testing;

/// a - r1 - r2 - b with live traffic and scriptable faults.
struct FaultedPair {
  net::Network net{"faults"};
  sim::Engine engine;
  net::NodeId a, r1, r2, b;
  std::unique_ptr<net::FlowEngine> flows;
  std::unique_ptr<snmp::AgentRegistry> agents;
  std::unique_ptr<SnmpCollector> collector;

  FaultedPair() {
    a = net.add_host("a");
    r1 = net.add_router("r1");
    r2 = net.add_router("r2");
    b = net.add_host("b");
    net.connect(a, r1, 100e6);
    net.connect(r1, r2, 45e6);
    net.connect(r2, b, 100e6);
    net.finalize();
    flows = std::make_unique<net::FlowEngine>(engine, net);
    agents = std::make_unique<snmp::AgentRegistry>(net, sim::Rng(7));
    agents->set_before_read([this] { flows->sync(); });
  }

  void make_collector(const std::function<void(SnmpCollectorConfig&)>& tweak = {}) {
    SnmpCollectorConfig cfg;
    cfg.domain = {*net::Ipv4Prefix::parse("10.0.0.0/8")};
    for (const net::Segment& seg : net.segments()) {
      net::Ipv4Address gw{};
      for (auto [node, ifidx] : seg.attachments) {
        (void)ifidx;
        if (net.node(node).kind == net::NodeKind::kRouter) {
          gw = net.node(node).primary_address();
          break;
        }
      }
      cfg.subnets.push_back({seg.prefix, gw, nullptr, false, 0.0});
    }
    if (tweak) tweak(cfg);
    collector = std::make_unique<SnmpCollector>(engine, *agents, std::move(cfg));
  }
  [[nodiscard]] net::Ipv4Address addr(net::NodeId id) const {
    return net.node(id).primary_address();
  }
};

std::map<std::string, double> capacities(const CollectorResponse& resp) {
  std::map<std::string, double> out;
  for (const VEdge& e : resp.topology.edges()) out[e.id] = e.capacity_bps;
  return out;
}

bool has_dark_vswitch(const CollectorResponse& resp) {
  for (const VNode& n : resp.topology.nodes()) {
    if (n.kind == VNodeKind::kVirtualSwitch && n.name.starts_with("vs:dark:")) return true;
  }
  return false;
}

// The acceptance scenario: flap r1, watch quarantine -> virtual-switch
// fallback -> staleness growth -> full recovery within one quarantine
// period of the agent coming back.
TEST(FaultRecovery, OutageQuarantineRecoveryLifecycle) {
  FaultedPair t;
  t.make_collector([](SnmpCollectorConfig& cfg) { cfg.quarantine_s = 20.0; });
  const auto nodes = {t.addr(t.a), t.addr(t.b)};
  const auto baseline = t.collector->query(nodes);
  ASSERT_TRUE(baseline.complete);
  const auto base_caps = capacities(baseline);

  t.flows->start(net::FlowSpec{.src = t.a, .dst = t.b, .demand_bps = 10e6});
  ftest::FaultScript script(t.engine, *t.agents);
  script.outage(t.r1, 14.0, 47.0);

  t.engine.advance(13.0);  // polls at 5 and 10 succeeded; agent still up
  const auto pre = t.collector->query(nodes);
  EXPECT_TRUE(pre.complete);
  EXPECT_LE(pre.max_staleness_s, 5.0 + 1e-9);
  EXPECT_FALSE(has_dark_vswitch(pre));

  // Outage begins at 14; the poll at 15 fails and quarantines r1.
  t.engine.advance(7.0);  // t = 20
  EXPECT_TRUE(t.collector->agent_in_quarantine(t.addr(t.r1)));
  const auto mid1 = t.collector->query(nodes);
  EXPECT_TRUE(has_dark_vswitch(mid1));
  EXPECT_GT(mid1.max_staleness_s, 5.0);

  t.engine.advance(10.0);  // t = 30, still down, still quarantined
  const auto mid2 = t.collector->query(nodes);
  EXPECT_TRUE(has_dark_vswitch(mid2));
  // Staleness is monotone while the agent stays dark...
  EXPECT_GT(mid2.max_staleness_s, mid1.max_staleness_s);
  // ...and no edge that had a measured capacity decays to zero: the
  // degraded answer keeps pre-outage capacities, flagged by staleness.
  for (const auto& [id, cap] : capacities(mid2)) {
    auto it = base_caps.find(id);
    if (it != base_caps.end()) {
      EXPECT_DOUBLE_EQ(cap, it->second) << id;
    }
  }

  // Agent returns at 47. Quarantine re-armed at 35 expires at 55; the
  // poll at 55 re-probes and succeeds — recovery within one quarantine
  // period of the outage ending.
  t.engine.advance(30.0);  // t = 60
  EXPECT_FALSE(t.collector->agent_in_quarantine(t.addr(t.r1)));
  const snmp::AgentHealth* h = t.collector->agent_health(t.addr(t.r1));
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->consecutive_failures, 0u);

  const auto post = t.collector->query(nodes);
  EXPECT_TRUE(post.complete);
  EXPECT_FALSE(has_dark_vswitch(post));
  // Topology and capacities are back to the pre-outage answer exactly —
  // no zero-capacity residue from the degraded phase.
  EXPECT_EQ(capacities(post), base_caps);
  // Fresh samples again: staleness reset to within one poll period.
  EXPECT_LE(post.max_staleness_s, 5.0 + 1e-9);
}

// Satellite regression: a failed ifSpeed GET must not poison the speed
// cache with 0.0. Before the fix, one query during an outage cached a
// zero capacity that survived the agent's recovery indefinitely.
TEST(FaultRecovery, FailedSpeedReadIsNotCachedAsZero) {
  net::Network net{"poison"};
  sim::Engine engine;
  const auto a = net.add_host("a");
  const auto b = net.add_host("b");
  const auto c = net.add_host("c");
  const auto r1 = net.add_router("r1");
  net.connect(a, r1, 100e6);
  net.connect(b, r1, 100e6);
  net.connect(c, r1, 100e6);
  net.finalize();
  snmp::AgentRegistry agents(net, sim::Rng(3));
  SnmpCollectorConfig cfg;
  cfg.domain = {*net::Ipv4Prefix::parse("10.0.0.0/8")};
  for (const net::Segment& seg : net.segments()) {
    cfg.subnets.push_back({seg.prefix, net.node(r1).primary_address(), nullptr, false, 0.0});
  }
  cfg.quarantine_s = 10.0;
  SnmpCollector collector(engine, agents, std::move(cfg));
  const auto addr = [&](net::NodeId id) { return net.node(id).primary_address(); };

  // Warm the route table and the a/b-side speeds while the agent is up.
  ASSERT_TRUE(collector.query({addr(a), addr(b)}).complete);

  // r1 crashes; a query toward the never-before-seen c-side interface has
  // a cached route but must fetch ifSpeed — which times out.
  agents.find_by_node(r1)->down = true;
  (void)collector.query({addr(a), addr(c)});
  EXPECT_TRUE(collector.agent_in_quarantine(addr(r1)));

  // Recovery: agent back up, quarantine allowed to lapse.
  agents.find_by_node(r1)->down = false;
  engine.advance(11.0);
  const auto resp = collector.query({addr(a), addr(c)});
  EXPECT_TRUE(resp.complete);
  // The router-side access edges report the real 100 Mb/s — a cached 0.0
  // from the failed GET would surface here as a permanent dead link.
  bool saw_c_side_speed = false;
  for (const VEdge& e : resp.topology.edges()) {
    if (e.capacity_bps > 0.0) saw_c_side_speed |= (e.capacity_bps == 100e6);
  }
  EXPECT_TRUE(saw_c_side_speed);
  for (const VEdge& e : resp.topology.edges()) {
    const VNode& na = resp.topology.nodes()[e.a];
    const VNode& nb = resp.topology.nodes()[e.b];
    if (na.kind == VNodeKind::kRouter || nb.kind == VNodeKind::kRouter) {
      EXPECT_DOUBLE_EQ(e.capacity_bps, 100e6) << e.id;
    }
  }
}

// Satellite regression: two routers pointing at each other (forced next
// hops) form a routing loop; the 32-hop guard used to exhaust silently
// and report the partial path as complete.
TEST(FaultRecovery, RoutingLoopReportsIncomplete) {
  FaultedPair t;
  snmp::MibQuirks loop1;
  loop1.force_next_hop = t.addr(t.r2);
  t.agents->configure(t.r1, loop1);
  snmp::MibQuirks loop2;
  loop2.force_next_hop = t.addr(t.r1);
  t.agents->configure(t.r2, loop2);
  t.make_collector();
  const auto resp = t.collector->query({t.addr(t.a), t.addr(t.b)});
  EXPECT_FALSE(resp.complete);
  // Endpoints still appear; the answer degrades instead of wedging.
  EXPECT_NE(resp.topology.find_by_addr(t.addr(t.a)), kNoVNode);
  EXPECT_NE(resp.topology.find_by_addr(t.addr(t.b)), kNoVNode);
}

// Satellite regression: a non-contiguous netmask (255.0.255.0) has no
// prefix length. Counting its leading ones installed a bogus /8 that
// swallowed every lookup; the row must be rejected instead.
TEST(FaultRecovery, NonContiguousNetmaskRowsRejected) {
  FaultedPair t;
  snmp::MibQuirks quirks;
  quirks.corrupt_route_mask = true;
  t.agents->configure(t.r1, quirks);
  t.make_collector();
  const auto resp = t.collector->query({t.addr(t.a), t.addr(t.b)});
  // Every r1 row is corrupt, so no usable route exists: incomplete, but
  // both endpoints still reported.
  EXPECT_FALSE(resp.complete);
  EXPECT_NE(resp.topology.find_by_addr(t.addr(t.a)), kNoVNode);
  EXPECT_NE(resp.topology.find_by_addr(t.addr(t.b)), kNoVNode);
}

// Satellite regression: multi-subnet star discovery issued a redundant
// member->gateway discover_pair when the reference node already was the
// gateway — one spurious path construction per subnet.
TEST(FaultRecovery, StarDiscoveryHasNoRedundantGatewayLeg) {
  net::Network net{"star"};
  sim::Engine engine;
  const auto a1 = net.add_host("a1");
  const auto a2 = net.add_host("a2");
  const auto sw = net.add_switch("sw");
  const auto r1 = net.add_router("r1");
  const auto r2 = net.add_router("r2");
  const auto b1 = net.add_host("b1");
  net.connect(a1, sw, 100e6);
  net.connect(a2, sw, 100e6);
  net.connect(sw, r1, 100e6);
  net.connect(r1, r2, 45e6);
  net.connect(r2, b1, 100e6);
  net.finalize();
  snmp::AgentRegistry agents(net, sim::Rng(5));
  SnmpCollectorConfig cfg;
  cfg.domain = {*net::Ipv4Prefix::parse("10.0.0.0/8")};
  // Count raw constructions: with caching on, the old redundant leg was a
  // cache hit and the defect was invisible in the discovery count.
  cfg.cache_enabled = false;
  for (const net::Segment& seg : net.segments()) {
    net::Ipv4Address gw{};
    for (auto [node, ifidx] : seg.attachments) {
      (void)ifidx;
      if (net.node(node).kind == net::NodeKind::kRouter) {
        gw = net.node(node).primary_address();
        break;
      }
    }
    cfg.subnets.push_back({seg.prefix, gw, nullptr, false, 0.0});
  }
  SnmpCollector collector(engine, agents, std::move(cfg));
  const auto addr = [&](net::NodeId id) { return net.node(id).primary_address(); };

  const auto resp = collector.query({addr(a1), addr(a2), addr(b1)});
  EXPECT_TRUE(resp.complete);
  // Two legs in subnet A (a1->gw, a2->gw), one in subnet B (b1->gw), one
  // inter-subnet representative pair. The redundant member->gateway pass
  // used to add one more per routed subnet.
  EXPECT_EQ(collector.path_discovery_count(), 4u);
}

// Fig 3's star shape: an N-host single-subnet query constructs exactly
// N-1 paths.
TEST(FaultRecovery, SingleSubnetStarConstructsNMinus1Paths) {
  apps::LanTestbed::Params p;
  p.hosts = 8;
  p.switches = 2;
  apps::LanTestbed lan(p);
  (void)lan.collector->query(lan.host_addrs(8));
  EXPECT_EQ(lan.collector->path_discovery_count(), 7u);
}

// Credential rotation (§6.2: "authentication ... community strings
// changed under us"): auth failures quarantine like timeouts, and the
// collector recovers once the credentials match again.
TEST(FaultRecovery, CommunityRotationQuarantinesAndRecovers) {
  FaultedPair t;
  t.make_collector([](SnmpCollectorConfig& cfg) { cfg.quarantine_s = 15.0; });
  const auto nodes = {t.addr(t.a), t.addr(t.b)};
  ASSERT_TRUE(t.collector->query(nodes).complete);

  ftest::FaultScript script(t.engine, *t.agents);
  script.rotate_community(t.net, t.r1, 10.0, "s3cret");
  script.rotate_community(t.net, t.r1, 40.0, "public");

  t.engine.advance(16.0);  // poll at 15 hits auth failures -> quarantine
  EXPECT_TRUE(t.collector->agent_in_quarantine(t.addr(t.r1)));
  const auto mid = t.collector->query(nodes);
  EXPECT_TRUE(has_dark_vswitch(mid));

  t.engine.advance(44.0);  // t = 60: credentials restored, quarantine lapsed
  EXPECT_FALSE(t.collector->agent_in_quarantine(t.addr(t.r1)));
  const auto post = t.collector->query(nodes);
  EXPECT_TRUE(post.complete);
  EXPECT_FALSE(has_dark_vswitch(post));
}

// Drop-rate ramps degrade and then restore service without operator
// intervention — exercised end to end through the fault script.
TEST(FaultRecovery, DropRampDegradesThenRecovers) {
  FaultedPair t;
  t.make_collector([](SnmpCollectorConfig& cfg) { cfg.quarantine_s = 10.0; });
  const auto nodes = {t.addr(t.a), t.addr(t.b)};
  ASSERT_TRUE(t.collector->query(nodes).complete);

  ftest::FaultScript script(t.engine, *t.agents);
  script.drop_ramp(t.r1, 10.0, 30.0, 0.2, 1.0);
  script.drop_ramp(t.r1, 30.0, 31.0, 1.0, 0.0, 1);

  t.engine.advance(29.0);  // lossy-to-dead window
  (void)t.collector->query(nodes);
  t.engine.advance(31.0);  // t = 60: healthy again, quarantine lapsed
  const auto post = t.collector->query(nodes);
  EXPECT_TRUE(post.complete);
  EXPECT_FALSE(has_dark_vswitch(post));
  const snmp::AgentHealth* h = t.collector->agent_health(t.addr(t.r1));
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->consecutive_failures, 0u);
}

// Staleness propagates through the Modeler so applications can judge
// answer quality without knowing collector internals.
TEST(FaultRecovery, StalenessSurfacesThroughModeler) {
  FaultedPair t;
  // Effectively disable polling: samples only happen at discovery time.
  t.make_collector([](SnmpCollectorConfig& cfg) { cfg.poll_interval_s = 1000.0; });
  Modeler modeler(*t.collector);
  (void)modeler.topology_query({t.addr(t.a), t.addr(t.b)});
  EXPECT_DOUBLE_EQ(modeler.last_query_staleness_s(), 0.0);

  t.engine.advance(30.0);
  (void)modeler.topology_query({t.addr(t.a), t.addr(t.b)});
  EXPECT_NEAR(modeler.last_query_staleness_s(), 30.0, 1e-9);
}

// The observability counters must agree with the injected fault script:
// a hard outage produces failures that are all timeouts, each logical
// failure costs exactly 1 + retries wire attempts, and quarantine events
// fire once per outage — so the metric deltas are fully determined by the
// script and the collector config.
TEST(FaultRecovery, MetricsMatchInjectedFaultScript) {
  if constexpr (!sim::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  FaultedPair t;
  t.make_collector([](SnmpCollectorConfig& cfg) { cfg.quarantine_s = 20.0; });
  const auto nodes = {t.addr(t.a), t.addr(t.b)};
  ASSERT_TRUE(t.collector->query(nodes).complete);

  auto& reg = sim::metrics();
  const auto val = [&reg](const char* name) { return reg.counter(name).value(); };
  const auto base_successes = val("snmp.client.successes_total");
  const auto base_failures = val("snmp.client.failures_total");
  const auto base_timeouts = val("snmp.client.timeouts_total");
  const auto base_retries = val("snmp.client.retries_total");
  const auto base_quarantines = val("core.snmp_collector.quarantine_events_total");

  ftest::FaultScript script(t.engine, *t.agents);
  script.outage(t.r1, 14.0, 47.0);

  // Healthy phase (polls at 5 and 10): successes flow, nothing fails.
  t.engine.advance(13.0);
  EXPECT_GT(val("snmp.client.successes_total"), base_successes);
  EXPECT_EQ(val("snmp.client.failures_total"), base_failures);
  EXPECT_EQ(val("snmp.client.timeouts_total"), base_timeouts);
  EXPECT_EQ(val("core.snmp_collector.quarantine_events_total"), base_quarantines);

  // Outage at 14; the poll at 15 fails and quarantines r1.
  t.engine.advance(7.0);  // t = 20
  ASSERT_TRUE(t.collector->agent_in_quarantine(t.addr(t.r1)));
  const auto failures = val("snmp.client.failures_total") - base_failures;
  const auto timeouts = val("snmp.client.timeouts_total") - base_timeouts;
  const auto retries = val("snmp.client.retries_total") - base_retries;
  EXPECT_GT(failures, 0u);
  // A dead agent makes every failure a timeout: with the default 1 retry,
  // each logical failure is exactly 2 wire attempts (1 retry each).
  EXPECT_EQ(timeouts, 2 * failures);
  EXPECT_EQ(retries, failures);
  EXPECT_EQ(val("core.snmp_collector.quarantine_events_total"), base_quarantines + 1);
  EXPECT_GE(reg.gauge("core.snmp_collector.quarantined_agents").value(), 1.0);

  // Quarantine holds until 35, re-arms on the failed re-probe, lapses
  // after the agent returns at 47: exactly one more quarantine event.
  t.engine.advance(40.0);  // t = 60
  EXPECT_FALSE(t.collector->agent_in_quarantine(t.addr(t.r1)));
  EXPECT_EQ(val("core.snmp_collector.quarantine_events_total"), base_quarantines + 2);
  // Recovered: successes advance again while failures stay flat.
  const auto rec_successes = val("snmp.client.successes_total");
  const auto rec_failures = val("snmp.client.failures_total");
  ASSERT_TRUE(t.collector->query(nodes).complete);
  t.engine.advance(5.0);
  EXPECT_GT(val("snmp.client.successes_total"), rec_successes);
  EXPECT_EQ(val("snmp.client.failures_total"), rec_failures);
}

// Route tables expire: a TTL-lapsed table is re-walked, so routing
// changes are eventually observed even on a warm cache.
TEST(FaultRecovery, RouteTableTtlForcesRewalk) {
  FaultedPair t;
  t.make_collector([](SnmpCollectorConfig& cfg) {
    cfg.route_table_ttl_s = 20.0;
    cfg.path_cache_ttl_s = 20.0;
    cfg.poll_interval_s = 0.0;  // isolate request counting
  });
  const auto nodes = {t.addr(t.a), t.addr(t.b)};
  (void)t.collector->query(nodes);
  const auto warm = t.collector->snmp_request_count();
  (void)t.collector->query(nodes);
  // Within TTL: fully cached, no new SNMP traffic.
  EXPECT_EQ(t.collector->snmp_request_count(), warm);
  t.engine.advance(21.0);
  (void)t.collector->query(nodes);
  // Past TTL: the route walks happen again.
  EXPECT_GT(t.collector->snmp_request_count(), warm);
}

}  // namespace
}  // namespace remos::core
