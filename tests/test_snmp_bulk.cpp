// SNMPv2 GetBulk: agent semantics, bulk walks, cost advantage.
#include <gtest/gtest.h>

#include "snmp/client.hpp"
#include "snmp/oids.hpp"

namespace remos::snmp {
namespace {

struct Fixture {
  net::Network net{"bulk"};
  net::NodeId r, sw;
  std::vector<net::NodeId> hosts;
  std::unique_ptr<AgentRegistry> agents;

  explicit Fixture(std::size_t n_hosts = 12) {
    r = net.add_router("r");
    sw = net.add_switch("sw");
    net.connect(r, sw, 1e9);
    for (std::size_t i = 0; i < n_hosts; ++i) {
      hosts.push_back(net.add_host("h" + std::to_string(i)));
      net.connect(hosts.back(), sw, 100e6);
    }
    net.finalize();
    agents = std::make_unique<AgentRegistry>(net, sim::Rng(1));
  }
  [[nodiscard]] net::Ipv4Address addr(net::NodeId id) const {
    return net.node(id).primary_address();
  }
};

TEST(GetBulk, ReturnsUpToMaxRepetitions) {
  Fixture f;
  Agent* agent = f.agents->find_by_node(f.sw);
  ASSERT_NE(agent, nullptr);
  const auto resp = agent->get_bulk("public", oids::kDot1dTpFdbPort, 5);
  EXPECT_EQ(resp.status, Status::kOk);
  ASSERT_EQ(resp.vbs.size(), 5u);
  for (std::size_t i = 1; i < resp.vbs.size(); ++i) {
    EXPECT_LT(resp.vbs[i - 1].oid, resp.vbs[i].oid);  // lexicographic order
  }
}

TEST(GetBulk, EndOfMibInsideBatch) {
  Fixture f(2);
  Agent* agent = f.agents->find_by_node(f.sw);
  // Request far more rows than the MIB holds past the FDB status column.
  const auto resp = agent->get_bulk("public", oids::kDot1dTpFdbStatus, 1000);
  EXPECT_EQ(resp.status, Status::kEndOfMib);
  EXPECT_GT(resp.vbs.size(), 0u);  // partial rows still delivered
}

TEST(GetBulk, AuthFailureAndLatencyShape) {
  Fixture f;
  Agent* agent = f.agents->find_by_node(f.r);
  EXPECT_EQ(agent->get_bulk("wrong", oids::kIfIndex, 4).status, Status::kAuthFailure);
  const auto one = agent->get_bulk("public", oids::kIfIndex, 1);
  const auto many = agent->get_bulk("public", oids::kIfTableEntry, 12);
  EXPECT_GT(many.latency_s, one.latency_s);           // per-binding cost
  EXPECT_LT(many.latency_s, 12.0 * one.latency_s);    // far below 12 round trips
}

TEST(WalkBulk, SameRowsAsGetNextWalk) {
  Fixture f;
  SnmpClient client(*f.agents);
  const auto a = f.addr(f.sw);
  Status s1 = Status::kTimeout, s2 = Status::kTimeout;
  const auto rows = client.walk(a, "public", oids::kDot1dTpFdbEntry, &s1);
  const auto bulk = client.walk_bulk(a, "public", oids::kDot1dTpFdbEntry, &s2, 7);
  EXPECT_EQ(s1, Status::kOk);
  EXPECT_EQ(s2, Status::kOk);
  ASSERT_EQ(rows.size(), bulk.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].oid, bulk[i].oid);
    EXPECT_EQ(to_string(rows[i].value), to_string(bulk[i].value));
  }
}

TEST(WalkBulk, FarFewerRequestsAndCheaper) {
  Fixture f(40);
  SnmpClient getnext(*f.agents);
  SnmpClient bulk(*f.agents);
  const auto a = f.addr(f.sw);
  (void)getnext.walk(a, "public", oids::kDot1dTpFdbEntry);
  (void)bulk.walk_bulk(a, "public", oids::kDot1dTpFdbEntry, nullptr, 24);
  EXPECT_LT(bulk.request_count() * 10, getnext.request_count());
  EXPECT_LT(bulk.consumed_s() * 4, getnext.consumed_s());
}

TEST(WalkBulk, UnknownAgentTimesOut) {
  Fixture f;
  SnmpClient client(*f.agents, ClientConfig{0.5, 0});
  Status status = Status::kOk;
  const auto rows =
      client.walk_bulk(*net::Ipv4Address::parse("1.2.3.4"), "public", oids::kIfIndex, &status);
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(status, Status::kTimeout);
}

TEST(WalkBulk, EmptySubtreeOk) {
  Fixture f;
  SnmpClient client(*f.agents);
  Status status = Status::kTimeout;
  // Switch has no route table.
  const auto rows = client.walk_bulk(f.addr(f.sw), "public", oids::kIpRouteEntry, &status);
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(status, Status::kOk);
}

}  // namespace
}  // namespace remos::snmp
