// Rng: determinism, stream independence, distribution sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace remos::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng root(99);
  Rng a1 = root.fork("traffic");
  Rng a2 = root.fork("traffic");
  Rng b = root.fork("hostload");
  EXPECT_EQ(a1.next(), a2.next());
  EXPECT_NE(a1.next(), b.next());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(7), b(7);
  (void)a.fork("x");
  (void)a.fork("y");
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(3.0, 7.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(1);
  EXPECT_EQ(r.uniform_int(4, 4), 4);
  EXPECT_EQ(r.uniform_int(9, 3), 9);  // inverted range clamps to lo
}

TEST(Rng, ExponentialMeanCloseToRequested) {
  Rng r(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(r.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.15);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(Rng, NormalMomentsCloseToRequested) {
  Rng r(23);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ParetoRespectsMinimumAndIsHeavyTailed) {
  Rng r(31);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(r.pareto(1.5, 100.0));
  EXPECT_GE(stats.min(), 100.0);
  // Mean of Pareto(1.5, 100) = alpha*xm/(alpha-1) = 300; heavy tail means
  // the sample mean is noisy, so use a generous band.
  EXPECT_GT(stats.mean(), 200.0);
  EXPECT_GT(stats.max(), 1000.0);
}

TEST(Rng, ChanceExtremes) {
  Rng r(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceProportionRoughlyCorrect) {
  Rng r(43);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

}  // namespace
}  // namespace remos::sim
