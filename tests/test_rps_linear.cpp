// Estimators: Yule-Walker/Levinson-Durbin, Burg, innovations MA,
// Hannan-Rissanen ARMA, psi-weights, OLS.
#include <gtest/gtest.h>

#include <cmath>

#include "rps/linear.hpp"
#include "rps/series.hpp"
#include "sim/rng.hpp"

namespace remos::rps {
namespace {

std::vector<double> simulate_ar(std::span<const double> phi, double sigma, std::size_t n,
                                std::uint64_t seed, double mu = 0.0) {
  sim::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  std::vector<double> state(phi.size(), 0.0);
  for (std::size_t t = 0; t < n + 200; ++t) {  // burn-in
    double z = rng.normal(0.0, sigma);
    for (std::size_t j = 0; j < phi.size(); ++j) z += phi[j] * state[j];
    for (std::size_t j = phi.size(); j-- > 1;) state[j] = state[j - 1];
    if (!state.empty()) state[0] = z;
    if (t >= 200) xs.push_back(mu + z);
  }
  return xs;
}

std::vector<double> simulate_ma(std::span<const double> theta, double sigma, std::size_t n,
                                std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> eps(n + theta.size(), 0.0);
  for (double& e : eps) e = rng.normal(0.0, sigma);
  std::vector<double> xs(n);
  for (std::size_t t = 0; t < n; ++t) {
    double v = eps[t + theta.size()];
    for (std::size_t j = 0; j < theta.size(); ++j) v += theta[j] * eps[t + theta.size() - 1 - j];
    xs[t] = v;
  }
  return xs;
}

TEST(YuleWalker, RecoversAr1) {
  const std::vector<double> phi{0.7};
  const auto xs = simulate_ar(phi, 1.0, 20000, 11);
  const ArFit fit = fit_ar_yule_walker(xs, 1);
  EXPECT_NEAR(fit.phi[0], 0.7, 0.03);
  EXPECT_NEAR(fit.sigma2, 1.0, 0.08);
}

TEST(YuleWalker, RecoversAr2) {
  const std::vector<double> phi{0.5, 0.3};
  const auto xs = simulate_ar(phi, 1.0, 40000, 12);
  const ArFit fit = fit_ar_yule_walker(xs, 2);
  EXPECT_NEAR(fit.phi[0], 0.5, 0.04);
  EXPECT_NEAR(fit.phi[1], 0.3, 0.04);
}

TEST(YuleWalker, MeanInvariant) {
  const std::vector<double> phi{0.6};
  const auto xs = simulate_ar(phi, 1.0, 20000, 13, /*mu=*/100.0);
  const ArFit fit = fit_ar_yule_walker(xs, 1);
  EXPECT_NEAR(fit.phi[0], 0.6, 0.03);
}

TEST(YuleWalker, ConstantSeriesHandled) {
  const std::vector<double> xs(100, 3.0);
  const ArFit fit = fit_ar_yule_walker(xs, 4);
  EXPECT_DOUBLE_EQ(fit.sigma2, 0.0);
}

TEST(YuleWalker, ShortSeriesThrows) {
  EXPECT_THROW(fit_ar_yule_walker(std::vector<double>{1, 2}, 4), std::invalid_argument);
}

TEST(LevinsonDurbin, NeedsEnoughLags) {
  EXPECT_THROW(levinson_durbin(std::vector<double>{1.0}, 2), std::invalid_argument);
}

TEST(Burg, RecoversAr1) {
  const std::vector<double> phi{0.7};
  const auto xs = simulate_ar(phi, 1.0, 20000, 14);
  const ArFit fit = fit_ar_burg(xs, 1);
  EXPECT_NEAR(fit.phi[0], 0.7, 0.03);
}

TEST(Burg, WorksOnShortSeriesWhereYwIsNoisy) {
  const std::vector<double> phi{0.8};
  const auto xs = simulate_ar(phi, 1.0, 64, 15);
  const ArFit fit = fit_ar_burg(xs, 1);
  EXPECT_NEAR(fit.phi[0], 0.8, 0.2);
}

TEST(InnovationsMa, RecoversMa1) {
  const std::vector<double> theta{0.6};
  const auto xs = simulate_ma(theta, 1.0, 40000, 16);
  const MaFit fit = fit_ma_innovations(xs, 1);
  EXPECT_NEAR(fit.theta[0], 0.6, 0.06);
  EXPECT_NEAR(fit.sigma2, 1.0, 0.1);
}

TEST(InnovationsMa, RecoversMa2Signs) {
  const std::vector<double> theta{0.5, -0.3};
  const auto xs = simulate_ma(theta, 1.0, 60000, 17);
  const MaFit fit = fit_ma_innovations(xs, 2);
  EXPECT_NEAR(fit.theta[0], 0.5, 0.07);
  EXPECT_NEAR(fit.theta[1], -0.3, 0.07);
}

TEST(HannanRissanen, RecoversArma11) {
  // Simulate ARMA(1,1): x_t = 0.6 x_{t-1} + e_t + 0.4 e_{t-1}.
  sim::Rng rng(18);
  std::vector<double> xs;
  double prev_x = 0.0, prev_e = 0.0;
  for (int t = 0; t < 62000; ++t) {
    const double e = rng.normal();
    const double x = 0.6 * prev_x + e + 0.4 * prev_e;
    if (t >= 2000) xs.push_back(x);
    prev_x = x;
    prev_e = e;
  }
  const ArmaFit fit = fit_arma_hannan_rissanen(xs, 1, 1);
  EXPECT_NEAR(fit.phi[0], 0.6, 0.06);
  EXPECT_NEAR(fit.theta[0], 0.4, 0.08);
  EXPECT_NEAR(fit.sigma2, 1.0, 0.1);
}

TEST(HannanRissanen, PureArFallback) {
  const std::vector<double> phi{0.7};
  const auto xs = simulate_ar(phi, 1.0, 20000, 19);
  const ArmaFit fit = fit_arma_hannan_rissanen(xs, 1, 0);
  EXPECT_TRUE(fit.theta.empty());
  EXPECT_NEAR(fit.phi[0], 0.7, 0.03);
}

TEST(PsiWeights, PureArGeometric) {
  const std::vector<double> phi{0.5};
  const auto psi = psi_weights(phi, {}, 5);
  EXPECT_DOUBLE_EQ(psi[0], 1.0);
  EXPECT_DOUBLE_EQ(psi[1], 0.5);
  EXPECT_DOUBLE_EQ(psi[2], 0.25);
  EXPECT_DOUBLE_EQ(psi[4], 0.0625);
}

TEST(PsiWeights, PureMaTruncates) {
  const std::vector<double> theta{0.4, 0.2};
  const auto psi = psi_weights({}, theta, 5);
  EXPECT_DOUBLE_EQ(psi[0], 1.0);
  EXPECT_DOUBLE_EQ(psi[1], 0.4);
  EXPECT_DOUBLE_EQ(psi[2], 0.2);
  EXPECT_DOUBLE_EQ(psi[3], 0.0);
}

TEST(PsiWeights, ArmaMixes) {
  const std::vector<double> phi{0.5};
  const std::vector<double> theta{0.3};
  const auto psi = psi_weights(phi, theta, 4);
  EXPECT_DOUBLE_EQ(psi[0], 1.0);
  EXPECT_DOUBLE_EQ(psi[1], 0.8);   // theta1 + phi1*psi0
  EXPECT_DOUBLE_EQ(psi[2], 0.4);   // phi1*psi1
  EXPECT_DOUBLE_EQ(psi[3], 0.2);
}

TEST(Ols, ExactSolveOnNoiselessData) {
  // y = 2 a + 3 b.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    const double a = i, b = i * i * 0.1 + 1;
    rows.push_back({a, b});
    y.push_back(2 * a + 3 * b);
  }
  const auto beta = ols(rows, y);
  ASSERT_EQ(beta.size(), 2u);
  EXPECT_NEAR(beta[0], 2.0, 1e-6);
  EXPECT_NEAR(beta[1], 3.0, 1e-6);
}

TEST(Ols, NoisyRecovery) {
  sim::Rng rng(20);
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 0; i < 5000; ++i) {
    const double a = rng.normal(), b = rng.normal();
    rows.push_back({a, b});
    y.push_back(1.5 * a - 0.7 * b + rng.normal(0.0, 0.1));
  }
  const auto beta = ols(rows, y);
  EXPECT_NEAR(beta[0], 1.5, 0.02);
  EXPECT_NEAR(beta[1], -0.7, 0.02);
}

TEST(Ols, ShapeMismatchThrows) {
  EXPECT_THROW(ols({{1.0}}, std::vector<double>{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(ols({}, std::vector<double>{}), std::invalid_argument);
}

TEST(Ols, DegenerateColumnYieldsZero) {
  // Second column is all zeros: its coefficient must come back ~0.
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  for (int i = 1; i <= 10; ++i) {
    rows.push_back({static_cast<double>(i), 0.0});
    y.push_back(4.0 * i);
  }
  const auto beta = ols(rows, y);
  EXPECT_NEAR(beta[0], 4.0, 1e-6);
  EXPECT_NEAR(beta[1], 0.0, 1e-6);
}

}  // namespace
}  // namespace remos::rps
