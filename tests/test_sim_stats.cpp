// RunningStats, Histogram, MeasurementHistory.
#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace remos::sim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.7 - 3.0;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Histogram, BucketsAndBounds) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 1.0, 4), std::invalid_argument);
}

TEST(MeasurementHistory, RingBufferEviction) {
  MeasurementHistory h(3);
  for (int i = 0; i < 5; ++i) h.add(static_cast<double>(i), static_cast<double>(i) * 10);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_DOUBLE_EQ(h.at(0).value, 20.0);
  EXPECT_DOUBLE_EQ(h.latest().value, 40.0);
}

TEST(MeasurementHistory, ValuesOldestFirst) {
  MeasurementHistory h(10);
  h.add(1.0, 5.0);
  h.add(2.0, 6.0);
  h.add(3.0, 7.0);
  EXPECT_EQ(h.values(), (std::vector<double>{5.0, 6.0, 7.0}));
}

TEST(MeasurementHistory, WindowFilters) {
  MeasurementHistory h(10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i), static_cast<double>(i));
  const auto w = h.window(3.0, 6.0);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w.front().time, 3.0);
  EXPECT_DOUBLE_EQ(w.back().time, 6.0);
}

TEST(MeasurementHistory, MeanOverWindow) {
  MeasurementHistory h(10);
  h.add(0.0, 2.0);
  h.add(1.0, 4.0);
  h.add(2.0, 9.0);
  EXPECT_DOUBLE_EQ(h.mean_over(0.0, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(h.mean_over(5.0, 9.0), 0.0);  // empty window
}

TEST(MeasurementHistory, LastN) {
  MeasurementHistory h(10);
  for (int i = 0; i < 5; ++i) h.add(static_cast<double>(i), static_cast<double>(i));
  EXPECT_EQ(h.last(2), (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(h.last(99).size(), 5u);
}

TEST(Sparkline, ShapeAndLength) {
  const std::string s = ascii_sparkline({0.0, 5.0, 10.0});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.front(), ' ');
  EXPECT_EQ(s.back(), '@');
  EXPECT_TRUE(ascii_sparkline({}).empty());
  EXPECT_EQ(ascii_sparkline({7.0, 7.0}).size(), 2u);  // constant series
}

}  // namespace
}  // namespace remos::sim
