// Bridge Collector: L2 topology inference from Bridge-MIB walks,
// path queries, host-location monitoring.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "core/bridge_collector.hpp"

namespace remos::core {
namespace {

struct Lan {
  net::Network net{"lan"};
  sim::Engine engine;
  std::vector<net::NodeId> switches;
  std::vector<net::NodeId> hosts;
  std::unique_ptr<snmp::AgentRegistry> agents;
  std::unique_ptr<BridgeCollector> bridge;

  /// Chain of `n_switches`, hosts round-robin, fully finalized + collector.
  Lan(std::size_t n_switches, std::size_t n_hosts, double check_interval = 0.0) {
    for (std::size_t i = 0; i < n_switches; ++i) {
      switches.push_back(net.add_switch("s" + std::to_string(i)));
      if (i > 0) net.connect(switches[i - 1], switches[i], 1e9);
    }
    for (std::size_t i = 0; i < n_hosts; ++i) {
      hosts.push_back(net.add_host("h" + std::to_string(i)));
      net.connect(hosts.back(), switches[i % n_switches], 100e6);
    }
    net.finalize();
    agents = std::make_unique<snmp::AgentRegistry>(net, sim::Rng(1));
    BridgeCollectorConfig cfg;
    for (net::NodeId sw : switches) cfg.switches.push_back(net.node(sw).primary_address());
    cfg.arp = apps::make_arp(net);
    cfg.location_check_interval_s = check_interval;
    bridge = std::make_unique<BridgeCollector>(engine, *agents, std::move(cfg));
  }
  [[nodiscard]] net::Ipv4Address addr(net::NodeId id) const {
    return net.node(id).primary_address();
  }
};

TEST(BridgeCollector, StartupDiscoversEndpointsAndTrunks) {
  Lan lan(3, 6);
  const double cost = lan.bridge->startup();
  EXPECT_GT(cost, 0.0);
  EXPECT_TRUE(lan.bridge->started());
  EXPECT_EQ(lan.bridge->endpoint_count(), 6u);
  EXPECT_EQ(lan.bridge->inter_switch_link_count(), 2u);  // chain of 3
}

TEST(BridgeCollector, SingleSwitchStar) {
  Lan lan(1, 5);
  lan.bridge->startup();
  EXPECT_EQ(lan.bridge->endpoint_count(), 5u);
  EXPECT_EQ(lan.bridge->inter_switch_link_count(), 0u);
  const auto path = lan.bridge->l2_path(lan.addr(lan.hosts[0]), lan.addr(lan.hosts[1]));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);  // h0 -> sw -> h1
}

TEST(BridgeCollector, PathAcrossSwitchChain) {
  Lan lan(4, 8);
  lan.bridge->startup();
  // h0 on s0, h3 on s3: path h0-s0-s1-s2-s3-h3 = 5 edges.
  const auto path = lan.bridge->l2_path(lan.addr(lan.hosts[0]), lan.addr(lan.hosts[3]));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 5u);
  // Every hop is monitorable at a switch and carries a capacity.
  for (const auto& hop : *path) {
    EXPECT_FALSE(hop.agent.is_zero());
    EXPECT_GT(hop.capacity_bps, 0.0);
    EXPECT_FALSE(hop.link_id.empty());
  }
}

TEST(BridgeCollector, PathLabelsFormChain) {
  Lan lan(2, 4);
  lan.bridge->startup();
  const auto path = lan.bridge->l2_path(lan.addr(lan.hosts[0]), lan.addr(lan.hosts[1]));
  ASSERT_TRUE(path.has_value());
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    EXPECT_EQ((*path)[i].to_label, (*path)[i + 1].from_label);
  }
  EXPECT_TRUE((*path).front().from_label.starts_with("mac:"));
  EXPECT_TRUE((*path).back().to_label.starts_with("mac:"));
}

TEST(BridgeCollector, SamePathBothDirections) {
  Lan lan(3, 6);
  lan.bridge->startup();
  const auto fwd = lan.bridge->l2_path(lan.addr(lan.hosts[0]), lan.addr(lan.hosts[5]));
  const auto rev = lan.bridge->l2_path(lan.addr(lan.hosts[5]), lan.addr(lan.hosts[0]));
  ASSERT_TRUE(fwd && rev);
  ASSERT_EQ(fwd->size(), rev->size());
  for (std::size_t i = 0; i < fwd->size(); ++i) {
    EXPECT_EQ((*fwd)[i].link_id, (*rev)[rev->size() - 1 - i].link_id);
  }
}

TEST(BridgeCollector, UnknownEndpointNullopt) {
  Lan lan(2, 2);
  lan.bridge->startup();
  EXPECT_FALSE(lan.bridge->l2_path(*net::Ipv4Address::parse("9.9.9.9"),
                                   lan.addr(lan.hosts[0])).has_value());
}

TEST(BridgeCollector, QueriesAnsweredFromDatabase) {
  Lan lan(3, 9);
  lan.bridge->startup();
  const auto before = lan.bridge->client().request_count();
  for (int i = 0; i < 10; ++i) {
    (void)lan.bridge->l2_path(lan.addr(lan.hosts[0]), lan.addr(lan.hosts[8]));
  }
  EXPECT_EQ(lan.bridge->client().request_count(), before);  // zero SNMP traffic
}

TEST(BridgeCollector, LocationOfHost) {
  Lan lan(2, 4);
  lan.bridge->startup();
  const auto loc = lan.bridge->location_of(lan.addr(lan.hosts[0]));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->first, lan.addr(lan.switches[0]));
}

TEST(BridgeCollector, DetectsHostMove) {
  Lan lan(2, 4);
  lan.bridge->startup();
  EXPECT_EQ(lan.bridge->move_count(), 0u);
  // h0 re-associates from s0 to s1 (wireless handoff).
  lan.net.move_host(lan.hosts[0], lan.switches[1], 100e6);
  const std::size_t moved = lan.bridge->check_locations();
  EXPECT_EQ(moved, 1u);
  EXPECT_EQ(lan.bridge->move_count(), 1u);
  EXPECT_GT(lan.bridge->topology_version(), 0u);
  const auto loc = lan.bridge->location_of(lan.addr(lan.hosts[0]));
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->first, lan.addr(lan.switches[1]));
  // Paths now route via the new attachment.
  const auto path = lan.bridge->l2_path(lan.addr(lan.hosts[0]), lan.addr(lan.hosts[3]));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);  // h0 and h3 both on s1 now
}

TEST(BridgeCollector, PeriodicMonitorRunsAutomatically) {
  Lan lan(2, 4, /*check_interval=*/10.0);
  lan.bridge->startup();
  lan.net.move_host(lan.hosts[1], lan.switches[0], 100e6);
  lan.engine.run_until(25.0);  // two monitor passes
  EXPECT_EQ(lan.bridge->move_count(), 1u);
}

TEST(BridgeCollector, StableLocationsCauseNoMoves) {
  Lan lan(3, 6, /*check_interval=*/5.0);
  lan.bridge->startup();
  lan.engine.run_until(60.0);
  EXPECT_EQ(lan.bridge->move_count(), 0u);
}

TEST(BridgeCollector, HubBehindPortBecomesCloud) {
  net::Network net("hublan");
  sim::Engine engine;
  const net::NodeId sw = net.add_switch("sw");
  const net::NodeId hub = net.add_hub("hub", 10e6);
  net.connect(sw, hub, 10e6);
  const net::NodeId a = net.add_host("a");
  const net::NodeId b = net.add_host("b");
  const net::NodeId c = net.add_host("c");
  net.connect(a, hub, 10e6);
  net.connect(b, hub, 10e6);
  net.connect(c, sw, 100e6);
  net.finalize();
  snmp::AgentRegistry agents(net, sim::Rng(2));
  BridgeCollectorConfig cfg;
  cfg.switches = {net.node(sw).primary_address()};
  cfg.arp = apps::make_arp(net);
  BridgeCollector bridge(engine, agents, std::move(cfg));
  bridge.startup();
  // a and b share the hub port; the path between them crosses the cloud.
  const auto path = bridge.l2_path(net.node(a).primary_address(), net.node(b).primary_address());
  ASSERT_TRUE(path.has_value());
  bool saw_shared = false;
  for (const auto& hop : *path) saw_shared |= hop.shared_medium;
  EXPECT_TRUE(saw_shared);
  // a to c crosses the switch.
  const auto path2 = bridge.l2_path(net.node(a).primary_address(), net.node(c).primary_address());
  ASSERT_TRUE(path2.has_value());
  EXPECT_GE(path2->size(), 2u);
}

TEST(BridgeCollector, StartupCostGrowsWithLanSize) {
  Lan small(2, 8);
  Lan large(2, 64);
  const double small_cost = small.bridge->startup();
  const double large_cost = large.bridge->startup();
  EXPECT_GT(large_cost, 2.0 * small_cost);
}

}  // namespace
}  // namespace remos::core
