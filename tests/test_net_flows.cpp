// FlowEngine: max-min fairness, demand caps, octet accounting, completion.
#include <gtest/gtest.h>

#include <cmath>

#include "net/flows.hpp"
#include "net/l2.hpp"

namespace remos::net {
namespace {

/// Dumbbell: a0,a1 - swL - r0 --bottleneck-- r1 - swR - b0,b1
struct Dumbbell {
  Network net{"dumbbell"};
  sim::Engine engine;
  NodeId a0, a1, b0, b1, r0, r1;
  std::unique_ptr<FlowEngine> flows;

  explicit Dumbbell(double bottleneck_bps = 10e6) {
    const NodeId swl = net.add_switch("swL");
    const NodeId swr = net.add_switch("swR");
    r0 = net.add_router("r0");
    r1 = net.add_router("r1");
    a0 = net.add_host("a0");
    a1 = net.add_host("a1");
    b0 = net.add_host("b0");
    b1 = net.add_host("b1");
    net.connect(a0, swl, 100e6);
    net.connect(a1, swl, 100e6);
    net.connect(swl, r0, 1e9);
    net.connect(r0, r1, bottleneck_bps);
    net.connect(r1, swr, 1e9);
    net.connect(b0, swr, 100e6);
    net.connect(b1, swr, 100e6);
    net.finalize();
    flows = std::make_unique<FlowEngine>(engine, net);
  }
};

TEST(FlowEngine, SingleGreedyFlowGetsBottleneck) {
  Dumbbell d;
  const FlowId f = d.flows->start(FlowSpec{.src = d.a0, .dst = d.b0});
  EXPECT_DOUBLE_EQ(d.flows->rate(f), 10e6);
}

TEST(FlowEngine, TwoGreedyFlowsShareFairly) {
  Dumbbell d;
  const FlowId f1 = d.flows->start(FlowSpec{.src = d.a0, .dst = d.b0});
  const FlowId f2 = d.flows->start(FlowSpec{.src = d.a1, .dst = d.b1});
  EXPECT_DOUBLE_EQ(d.flows->rate(f1), 5e6);
  EXPECT_DOUBLE_EQ(d.flows->rate(f2), 5e6);
}

TEST(FlowEngine, DemandCappedFlowLeavesRestToOthers) {
  Dumbbell d;
  const FlowId small = d.flows->start(FlowSpec{.src = d.a0, .dst = d.b0, .demand_bps = 2e6});
  const FlowId big = d.flows->start(FlowSpec{.src = d.a1, .dst = d.b1});
  EXPECT_DOUBLE_EQ(d.flows->rate(small), 2e6);
  EXPECT_DOUBLE_EQ(d.flows->rate(big), 8e6);
}

TEST(FlowEngine, StoppingFlowRestoresBandwidth) {
  Dumbbell d;
  const FlowId f1 = d.flows->start(FlowSpec{.src = d.a0, .dst = d.b0});
  const FlowId f2 = d.flows->start(FlowSpec{.src = d.a1, .dst = d.b1});
  d.flows->stop(f2);
  EXPECT_DOUBLE_EQ(d.flows->rate(f1), 10e6);
  EXPECT_FALSE(d.flows->active(f2));
}

TEST(FlowEngine, AccessLinkCanBeTheBottleneck) {
  Dumbbell d(1e9);  // backbone wider than the 100 Mb access links
  const FlowId f = d.flows->start(FlowSpec{.src = d.a0, .dst = d.b0});
  EXPECT_DOUBLE_EQ(d.flows->rate(f), 100e6);
}

TEST(FlowEngine, OppositeDirectionsDoNotContend) {
  Dumbbell d;
  const FlowId fwd = d.flows->start(FlowSpec{.src = d.a0, .dst = d.b0});
  const FlowId rev = d.flows->start(FlowSpec{.src = d.b1, .dst = d.a1});
  // Full duplex: both directions get the whole bottleneck.
  EXPECT_DOUBLE_EQ(d.flows->rate(fwd), 10e6);
  EXPECT_DOUBLE_EQ(d.flows->rate(rev), 10e6);
}

TEST(FlowEngine, FiniteFlowCompletesAtExactTime) {
  Dumbbell d;
  bool done = false;
  FlowSpec spec{.src = d.a0, .dst = d.b0};
  spec.bytes = 10'000'000;  // 10 MB at 10 Mb/s = 8 s
  spec.on_complete = [&](FlowId) { done = true; };
  const FlowId f = d.flows->start(std::move(spec));
  d.engine.run_until(7.99);
  EXPECT_FALSE(done);
  d.engine.run_until(8.01);
  EXPECT_TRUE(done);
  const auto stats = d.flows->stats(f);
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->delivered_bytes, 10'000'000u);
  EXPECT_NEAR(stats->average_bps(), 10e6, 1.0);
}

TEST(FlowEngine, CompletionTimeAdaptsToRateChanges) {
  Dumbbell d;
  bool done = false;
  FlowSpec spec{.src = d.a0, .dst = d.b0};
  spec.bytes = 10'000'000;
  spec.on_complete = [&](FlowId) { done = true; };
  d.flows->start(std::move(spec));
  // At t=2 a competitor halves the rate; remaining 7.5 MB now drain at
  // 5 Mb/s -> 12 s more. The competitor is infinite, so total is 14 s.
  d.engine.after(2.0, [&] { d.flows->start(FlowSpec{.src = d.a1, .dst = d.b1}); });
  d.engine.run_until(13.9);
  EXPECT_FALSE(done);
  d.engine.run_until(14.1);
  EXPECT_TRUE(done);
}

TEST(FlowEngine, OctetCountersMatchDelivery) {
  Dumbbell d;
  const FlowId f = d.flows->start(FlowSpec{.src = d.a0, .dst = d.b0});
  d.engine.advance(4.0);
  d.flows->sync();
  (void)f;
  // Bottleneck egress on r0 toward r1: 10 Mb/s * 4 s = 5 MB.
  const PathResult p = d.net.resolve_path(d.a0, d.b0);
  std::uint64_t bottleneck_out = 0;
  for (const Hop& h : p.hops) {
    const Link& l = d.net.link(h.link);
    if (l.capacity_bps == 10e6) {
      bottleneck_out = d.net.egress_interface(h).out_octets;
    }
  }
  EXPECT_NEAR(static_cast<double>(bottleneck_out), 5e6, 1.0);
}

TEST(FlowEngine, ManySmallSyncsDoNotDriftOctets) {
  Dumbbell d;
  const FlowId f = d.flows->start(FlowSpec{.src = d.a0, .dst = d.b0});
  // 10 Mb/s over 10 us syncs is 12.5 bytes each: truncating per sync would
  // lose 0.5 bytes every step (~500 bytes here). The fractional residue is
  // carried across syncs, so the total stays within one octet of fluid.
  for (int i = 0; i < 1000; ++i) {
    d.engine.advance(1e-5);
    d.flows->sync();
  }
  const auto stats = d.flows->stats(f);
  ASSERT_TRUE(stats.has_value());
  EXPECT_NEAR(static_cast<double>(stats->delivered_bytes), 12500.0, 1.0);
}

TEST(FlowEngine, EveryHopCountsOctets) {
  Dumbbell d;
  d.flows->start(FlowSpec{.src = d.a0, .dst = d.b0});
  d.engine.advance(2.0);
  d.flows->sync();
  const PathResult p = d.net.resolve_path(d.a0, d.b0);
  for (const Hop& h : p.hops) {
    EXPECT_GT(d.net.egress_interface(h).out_octets, 0u);
    EXPECT_GT(d.net.ingress_interface(h).in_octets, 0u);
  }
}

TEST(FlowEngine, DirectedLinkRateAggregates) {
  Dumbbell d;
  d.flows->start(FlowSpec{.src = d.a0, .dst = d.b0});
  d.flows->start(FlowSpec{.src = d.a1, .dst = d.b1});
  const PathResult p = d.net.resolve_path(d.a0, d.b0);
  for (const Hop& h : p.hops) {
    const Link& l = d.net.link(h.link);
    if (l.capacity_bps == 10e6) {
      EXPECT_DOUBLE_EQ(d.flows->directed_link_rate(l.id, h.forward), 10e6);
      EXPECT_DOUBLE_EQ(d.flows->directed_link_rate(l.id, !h.forward), 0.0);
    }
  }
}

TEST(FlowEngine, StoppedFlowKeepsStats) {
  Dumbbell d;
  const FlowId f = d.flows->start(FlowSpec{.src = d.a0, .dst = d.b0});
  d.engine.advance(3.0);
  d.flows->stop(f);
  const auto stats = d.flows->stats(f);
  ASSERT_TRUE(stats.has_value());
  EXPECT_FALSE(stats->completed);
  EXPECT_NEAR(stats->average_bps(), 10e6, 10.0);
}

TEST(FlowEngine, SharedHubSegmentIsSingleResource) {
  Network net;
  sim::Engine engine;
  const NodeId hub = net.add_hub("hub", 10e6);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  const NodeId c = net.add_host("c");
  const NodeId d = net.add_host("d");
  for (NodeId h : {a, b, c, d}) net.connect(h, hub, 100e6);
  net.finalize();
  FlowEngine flows(engine, net);
  // Two flows in *different directions* through the hub still share the
  // 10 Mb/s collision domain (half duplex).
  const FlowId f1 = flows.start(FlowSpec{.src = a, .dst = b});
  const FlowId f2 = flows.start(FlowSpec{.src = c, .dst = d});
  EXPECT_DOUBLE_EQ(flows.rate(f1), 5e6);
  EXPECT_DOUBLE_EQ(flows.rate(f2), 5e6);
}

TEST(FlowEngine, ManyFlowsConvergeToEqualShares) {
  Dumbbell d;
  std::vector<FlowId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(d.flows->start(FlowSpec{.src = i % 2 ? d.a0 : d.a1, .dst = i % 2 ? d.b0 : d.b1}));
  }
  for (FlowId f : ids) EXPECT_NEAR(d.flows->rate(f), 1e6, 1e-6);
}

TEST(FlowEngine, MaxMinThreeLinkExample) {
  // Classic parking-lot: flows (s0->e2 long), (s0->e1), (s1->e2).
  Network net;
  sim::Engine engine;
  const NodeId r0 = net.add_router("r0");
  const NodeId r1 = net.add_router("r1");
  const NodeId r2 = net.add_router("r2");
  net.connect(r0, r1, 10e6);
  net.connect(r1, r2, 10e6);
  const NodeId s0 = net.add_host("s0");
  const NodeId s1 = net.add_host("s1");
  const NodeId e1 = net.add_host("e1");
  const NodeId e2 = net.add_host("e2");
  net.connect(s0, r0, 100e6);
  net.connect(s1, r1, 100e6);
  net.connect(e1, r1, 100e6);
  net.connect(e2, r2, 100e6);
  net.finalize();
  FlowEngine flows(engine, net);
  const FlowId fl = flows.start(FlowSpec{.src = s0, .dst = e2});  // both links
  const FlowId f1 = flows.start(FlowSpec{.src = s0, .dst = e1});  // link 1
  const FlowId f2 = flows.start(FlowSpec{.src = s1, .dst = e2});  // link 2
  // Max-min: each link splits 10 Mb/s between two flows -> all get 5.
  EXPECT_DOUBLE_EQ(flows.rate(fl), 5e6);
  EXPECT_DOUBLE_EQ(flows.rate(f1), 5e6);
  EXPECT_DOUBLE_EQ(flows.rate(f2), 5e6);
  // Remove the long flow: f1 and f2 each get their whole link.
  flows.stop(fl);
  EXPECT_DOUBLE_EQ(flows.rate(f1), 10e6);
  EXPECT_DOUBLE_EQ(flows.rate(f2), 10e6);
}

TEST(FlowEngine, FinishedHistoryIsBounded) {
  // Long-running simulations churn through many flows; finished-flow
  // records must not grow without bound, and recent stats stay readable.
  Dumbbell d;
  FlowId last = 0;
  for (int i = 0; i < 300; ++i) {
    FlowSpec spec{.src = d.a0, .dst = d.b0};
    spec.bytes = 1000;
    last = d.flows->start(std::move(spec));
    d.engine.advance(0.1);
  }
  d.engine.advance(10.0);  // drain everything
  EXPECT_EQ(d.flows->active_count(), 0u);
  // The most recent flow's stats are retained.
  const auto stats = d.flows->stats(last);
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->completed);
}

TEST(FlowEngine, OctetsReconcileAtCompletion) {
  // A finite transfer whose size never divides evenly into sync steps:
  // when it completes, the interface counters an SNMP agent would read
  // must show exactly the transferred bytes — the fractional tail is
  // delivered as a real final octet, not silently absorbed into stats.
  Dumbbell d;
  FlowSpec spec{.src = d.a0, .dst = d.b0};
  spec.bytes = 999'999;
  const FlowId f = d.flows->start(std::move(spec));
  // Ragged sync instants so the sub-octet carry is live when it drains.
  for (int i = 1; i <= 100; ++i) {
    d.engine.run_until(static_cast<double>(i) * 1.7e-3);
    d.flows->sync();
  }
  d.engine.run_until(2.0);  // completion fires (0.8 s at 10 Mb/s)
  const auto stats = d.flows->stats(f);
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->delivered_bytes, 999'999u);
  const PathResult p = d.net.resolve_path(d.a0, d.b0);
  for (const Hop& h : p.hops) {
    EXPECT_EQ(d.net.egress_interface(h).out_octets, 999'999u);
    EXPECT_EQ(d.net.ingress_interface(h).in_octets, 999'999u);
  }
}

TEST(FlowEngine, OctetsReconcileAtStop) {
  // Stopping mid-transfer flushes the sub-octet carry (rounded) instead of
  // dropping it, so flow stats and interface counters agree exactly.
  Dumbbell d;
  const FlowId f = d.flows->start(FlowSpec{.src = d.a0, .dst = d.b0});
  // 10 Mb/s for 101 * 10 us = 12.5 bytes per step; the odd step count
  // leaves a 0.5-octet carry pending at stop().
  for (int i = 0; i < 101; ++i) {
    d.engine.advance(1e-5);
    d.flows->sync();
  }
  d.flows->stop(f);
  const auto stats = d.flows->stats(f);
  ASSERT_TRUE(stats.has_value());
  EXPECT_FALSE(stats->completed);
  const PathResult p = d.net.resolve_path(d.a0, d.b0);
  for (const Hop& h : p.hops) {
    EXPECT_EQ(d.net.egress_interface(h).out_octets, stats->delivered_bytes);
    EXPECT_EQ(d.net.ingress_interface(h).in_octets, stats->delivered_bytes);
  }
  // And the flush really captured the fluid total: 101 * 12.5 = 1262.5,
  // rounded to nearest.
  EXPECT_EQ(stats->delivered_bytes, 1263u);
}

TEST(FlowEngine, ZeroCapacityLinkRttStaysFinite) {
  // A dead (zero-capacity) hop has no headroom: utilization saturates at
  // the cap instead of dividing by zero and poisoning the RTT with NaN.
  Network net{"dead-hop"};
  sim::Engine engine;
  const NodeId sw = net.add_switch("sw");
  const NodeId h0 = net.add_host("h0");
  const NodeId h1 = net.add_host("h1");
  net.connect(h0, sw, 100e6, 0.001);
  const LinkId dead = net.connect(h1, sw, 100e6, 0.001);
  net.finalize();
  net.link(dead).capacity_bps = 0.0;  // administratively down / speed unknown
  FlowEngine flows(engine, net);
  const double rtt = flows.current_rtt(h0, h1);
  EXPECT_TRUE(std::isfinite(rtt));
  // Propagation 2*(1+1) ms plus the saturated-queue penalty on both
  // directions of the dead link: 0.002 * 0.95 / 0.05 = 38 ms each way.
  EXPECT_NEAR(rtt, 0.004 + 2.0 * 0.002 * 0.95 / 0.05, 1e-9);
}

TEST(FlowEngine, LinkIndexRebuiltOnTopologyChange) {
  // Rehoming a host bumps the topology version; the per-directed-link
  // index must be rebuilt at the new link count (not merely grown), so no
  // stale entries survive on the links the old paths crossed.
  Network lan{"lan"};
  sim::Engine engine;
  const NodeId sw0 = lan.add_switch("sw0");
  const NodeId sw1 = lan.add_switch("sw1");
  const NodeId h0 = lan.add_host("h0");
  const NodeId h1 = lan.add_host("h1");
  const LinkId l0 = lan.connect(h0, sw0, 100e6);
  lan.connect(h1, sw1, 100e6);
  const LinkId trunk = lan.connect(sw0, sw1, 1e9);
  lan.finalize();
  FlowEngine flows(engine, lan);

  const FlowId f1 = flows.start(FlowSpec{.src = h0, .dst = h1});
  EXPECT_EQ(flows.link_index_rebuilds(), 0u);
  EXPECT_DOUBLE_EQ(flows.directed_link_rate(l0, true) + flows.directed_link_rate(l0, false),
                   100e6);
  flows.stop(f1);

  lan.move_host(h0, sw1, 100e6);
  const FlowId f2 = flows.start(FlowSpec{.src = h0, .dst = h1});
  EXPECT_EQ(flows.link_index_rebuilds(), 1u);
  // move_host rewires l0 onto sw1, so it still carries the new flow — but
  // the trunk is off every path now; a stale index entry would make it
  // non-zero (or trip the index's active-flow check).
  EXPECT_DOUBLE_EQ(flows.directed_link_rate(l0, true) + flows.directed_link_rate(l0, false),
                   100e6);
  EXPECT_DOUBLE_EQ(
      flows.directed_link_rate(trunk, true) + flows.directed_link_rate(trunk, false), 0.0);
  EXPECT_DOUBLE_EQ(flows.rate(f2), 100e6);
}

}  // namespace
}  // namespace remos::net
