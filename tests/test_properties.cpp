// Parameterized property sweeps (TEST_P): invariants that must hold across
// whole families of inputs, not just hand-picked examples.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/testbed.hpp"
#include "core/audit.hpp"
#include "core/maxmin.hpp"
#include "core/protocol.hpp"
#include "net/l2.hpp"
#include "rps/linear.hpp"
#include "sim/rng.hpp"

namespace remos {
namespace {

// ---------------------------------------------------------------------------
// LAN family: for any (hosts, switches), finalize() must produce a valid
// addressed spanning-tree LAN and the collector must answer connected,
// complete queries.
// ---------------------------------------------------------------------------

using LanShape = std::tuple<std::size_t, std::size_t>;  // hosts, switches

class LanFamily : public ::testing::TestWithParam<LanShape> {};

TEST_P(LanFamily, FinalizeInvariants) {
  const auto [hosts, switches] = GetParam();
  apps::LanTestbed::Params p;
  p.hosts = hosts;
  p.switches = switches;
  apps::LanTestbed lan(p);

  // One L2 segment spanning everything; forwarding topology is a tree.
  ASSERT_EQ(lan.net.segment_count(), 1u);
  EXPECT_TRUE(net::forwarding_topology_is_tree(lan.net, 0));
  // Unique addresses inside the segment prefix.
  const net::Segment& seg = lan.net.segment(0);
  std::set<std::uint32_t> seen;
  for (auto [node, ifidx] : seg.attachments) {
    const auto addr = lan.net.node(node).find_interface(ifidx)->addr;
    EXPECT_TRUE(seg.prefix.contains(addr));
    EXPECT_TRUE(seen.insert(addr.value()).second);
  }
  // Every host can reach every other host.
  for (std::size_t i = 1; i < lan.hosts.size(); ++i) {
    EXPECT_FALSE(lan.net.resolve_path(lan.hosts[0], lan.hosts[i]).empty());
  }
}

TEST_P(LanFamily, CollectorAnswersComplete) {
  const auto [hosts, switches] = GetParam();
  apps::LanTestbed::Params p;
  p.hosts = hosts;
  p.switches = switches;
  apps::LanTestbed lan(p);
  const auto nodes = lan.host_addrs(hosts);
  const auto resp = lan.collector->query(nodes);
  EXPECT_TRUE(resp.complete);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_TRUE(resp.topology
                    .shortest_path(resp.topology.find_by_addr(nodes[0]),
                                   resp.topology.find_by_addr(nodes[i]))
                    .has_value())
        << "host " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, LanFamily,
                         ::testing::Values(LanShape{2, 1}, LanShape{5, 1}, LanShape{8, 2},
                                           LanShape{16, 3}, LanShape{30, 5}, LanShape{48, 7},
                                           LanShape{64, 8}));

// ---------------------------------------------------------------------------
// Max-min allocation on random dumbbell-ish topologies: feasibility and
// max-min optimality (every flow is demand-satisfied or crosses a
// saturated edge on which it has a maximal rate).
// ---------------------------------------------------------------------------

class MaxMinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinProperty, FeasibleAndMaxMinOptimal) {
  sim::Rng rng(GetParam());
  // Random small topology: routers in a line, hosts hung off random routers.
  core::VirtualTopology topo;
  const int n_routers = static_cast<int>(rng.uniform_int(2, 5));
  std::vector<core::VNodeIndex> routers;
  for (int r = 0; r < n_routers; ++r) {
    routers.push_back(topo.add_node(core::VNode{
        core::VNodeKind::kRouter, "r" + std::to_string(r),
        net::Ipv4Address(10, 0, 255, static_cast<std::uint8_t>(r + 1))}));
  }
  for (int r = 0; r + 1 < n_routers; ++r) {
    topo.add_edge(core::VEdge{routers[static_cast<std::size_t>(r)],
                              routers[static_cast<std::size_t>(r + 1)],
                              rng.uniform(5e6, 50e6), 0, 0, 0, "core" + std::to_string(r)});
  }
  const int n_hosts = static_cast<int>(rng.uniform_int(3, 8));
  std::vector<net::Ipv4Address> host_addrs;
  for (int h = 0; h < n_hosts; ++h) {
    const net::Ipv4Address addr(10, 0, 0, static_cast<std::uint8_t>(h + 1));
    host_addrs.push_back(addr);
    const auto v = topo.add_node(core::VNode{core::VNodeKind::kHost,
                                             "h" + std::to_string(h), addr});
    const auto attach = routers[static_cast<std::size_t>(
        rng.uniform_int(0, n_routers - 1))];
    topo.add_edge(core::VEdge{v, attach, rng.uniform(10e6, 100e6), 0, 0, 0,
                              "acc" + std::to_string(h)});
  }
  // Random flow set (some with demand caps).
  std::vector<core::FlowRequest> requests;
  const int n_flows = static_cast<int>(rng.uniform_int(2, 6));
  for (int f = 0; f < n_flows; ++f) {
    core::FlowRequest req;
    req.src = host_addrs[static_cast<std::size_t>(rng.uniform_int(0, n_hosts - 1))];
    do {
      req.dst = host_addrs[static_cast<std::size_t>(rng.uniform_int(0, n_hosts - 1))];
    } while (req.dst == req.src);
    if (rng.chance(0.3)) req.demand_bps = rng.uniform(1e6, 20e6);
    requests.push_back(req);
  }

  const auto result = core::max_min_allocate(topo, requests);

  // The deep auditors must accept every randomly generated instance this
  // test's independent re-check below accepts (they also ran once already,
  // inside max_min_allocate itself).
  EXPECT_NO_THROW(core::audit::audit_topology(topo));
  EXPECT_NO_THROW(core::audit::audit_max_min(topo, requests, result));

  // Re-walk every flow's path once to recover directed resources.
  using DirectedEdge = std::pair<std::string, bool>;
  std::vector<std::vector<DirectedEdge>> flow_resources(requests.size());
  for (std::size_t f = 0; f < requests.size(); ++f) {
    if (!result.flows[f].routable()) continue;
    const auto src = topo.find_by_addr(requests[f].src);
    auto path = topo.shortest_path(src, topo.find_by_addr(requests[f].dst));
    ASSERT_TRUE(path.has_value());
    core::VNodeIndex cur = src;
    for (std::size_t ei : *path) {
      const core::VEdge& e = topo.edges()[ei];
      const bool ab = (e.a == cur);
      flow_resources[f].emplace_back(e.id, ab);
      cur = ab ? e.b : e.a;
    }
  }

  // Feasibility + per-directed-edge aggregates.
  std::map<DirectedEdge, double> usage;
  std::map<DirectedEdge, double> max_rate;
  for (std::size_t f = 0; f < requests.size(); ++f) {
    const auto& info = result.flows[f];
    if (!info.routable()) continue;
    EXPECT_LE(info.available_bps, requests[f].demand_bps * (1 + 1e-9));
    for (const DirectedEdge& de : flow_resources[f]) {
      usage[de] += info.available_bps;
      max_rate[de] = std::max(max_rate[de], info.available_bps);
    }
  }
  for (const auto& [key, used] : usage) {
    const auto& [id, ab] = key;
    for (const core::VEdge& e : topo.edges()) {
      if (e.id == id) {
        EXPECT_LE(used, e.available_bps(ab) * (1 + 1e-6)) << id;
      }
    }
  }

  // Max-min optimality: every routable flow meets its demand or crosses a
  // saturated directed edge on which its rate is maximal.
  for (std::size_t f = 0; f < requests.size(); ++f) {
    const auto& info = result.flows[f];
    if (!info.routable()) continue;
    if (info.available_bps >= requests[f].demand_bps * (1 - 1e-9)) continue;
    bool bottlenecked = false;
    for (const DirectedEdge& de : flow_resources[f]) {
      double avail = 0.0;
      for (const core::VEdge& e : topo.edges()) {
        if (e.id == de.first) avail = e.available_bps(de.second);
      }
      const bool saturated = usage[de] >= avail * (1 - 1e-6);
      if (saturated && info.available_bps >= max_rate[de] * (1 - 1e-6)) bottlenecked = true;
    }
    EXPECT_TRUE(bottlenecked) << "flow " << f << " is neither satisfied nor bottlenecked";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinProperty, ::testing::Range<std::uint64_t>(1, 25));

// ---------------------------------------------------------------------------
// Audited collection: on random LAN shapes, run the monitoring loop for a
// while and require every auditor — physical network, response topology,
// staleness annotations, collector caches — to accept the live state.
// ---------------------------------------------------------------------------

class AuditedCollection : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AuditedCollection, CollectorStateSurvivesAllAuditors) {
  sim::Rng rng(GetParam());
  apps::LanTestbed::Params p;
  p.hosts = static_cast<std::size_t>(rng.uniform_int(3, 24));
  p.switches = static_cast<std::size_t>(rng.uniform_int(1, 4));
  p.poll_interval_s = rng.uniform(1.0, 10.0);
  apps::LanTestbed lan(p);

  EXPECT_NO_THROW(lan.net.audit());
  const auto nodes = lan.host_addrs(std::min<std::size_t>(p.hosts, 6));
  for (int round = 0; round < 3; ++round) {
    lan.engine.run_until(lan.engine.now() + rng.uniform(0.5, 20.0));
    // query() self-audits (response + caches) when REMOS_AUDIT is on; call
    // the auditors explicitly too so the test also covers audits-off builds
    // where the self-audit compiles away.
    core::CollectorResponse resp;
    ASSERT_NO_THROW(resp = lan.collector->query(nodes));
    EXPECT_NO_THROW(core::audit::audit_response(resp, lan.engine.now()));
    EXPECT_NO_THROW(lan.collector->audit_caches());
    EXPECT_TRUE(resp.complete);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditedCollection, ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// AR estimation: Yule-Walker and Burg recover phi across the stability
// range, and the innovation variance stays close to truth.
// ---------------------------------------------------------------------------

class ArRecovery : public ::testing::TestWithParam<double> {};

TEST_P(ArRecovery, YuleWalkerAndBurgRecoverPhi) {
  const double phi = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(std::fabs(phi) * 1000) + 3);
  std::vector<double> xs{0.0};
  for (int i = 0; i < 30000; ++i) xs.push_back(phi * xs.back() + rng.normal());
  const auto yw = rps::fit_ar_yule_walker(xs, 1);
  const auto burg = rps::fit_ar_burg(xs, 1);
  EXPECT_NEAR(yw.phi[0], phi, 0.05) << "yule-walker";
  EXPECT_NEAR(burg.phi[0], phi, 0.05) << "burg";
  EXPECT_NEAR(yw.sigma2, 1.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(PhiSweep, ArRecovery,
                         ::testing::Values(-0.9, -0.6, -0.3, 0.0, 0.3, 0.6, 0.9, 0.95));

// ---------------------------------------------------------------------------
// Protocol round trips survive arbitrary generated topologies (both wire
// formats agree with the original and with each other).
// ---------------------------------------------------------------------------

class ProtocolRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolRoundTrip, AsciiAndXmlAgree) {
  sim::Rng rng(GetParam());
  core::CollectorResponse resp;
  const int n = static_cast<int>(rng.uniform_int(1, 12));
  for (int i = 0; i < n; ++i) {
    const auto kind = static_cast<core::VNodeKind>(rng.uniform_int(0, 3));
    resp.topology.add_node(core::VNode{
        kind, "node-" + std::to_string(i),
        rng.chance(0.8) ? net::Ipv4Address(static_cast<std::uint32_t>(rng.next()))
                        : net::Ipv4Address{}});
  }
  const int edges = static_cast<int>(rng.uniform_int(0, 2 * n));
  for (int e = 0; e < edges; ++e) {
    core::VEdge edge;
    edge.a = static_cast<core::VNodeIndex>(rng.uniform_int(0, n - 1));
    edge.b = static_cast<core::VNodeIndex>(rng.uniform_int(0, n - 1));
    edge.capacity_bps = rng.uniform(0.0, 1e10);
    edge.util_ab_bps = rng.uniform(0.0, edge.capacity_bps);
    edge.util_ba_bps = rng.uniform(0.0, edge.capacity_bps);
    edge.latency_s = rng.uniform(0.0, 0.5);
    edge.id = "edge-" + std::to_string(e);
    resp.topology.add_edge(std::move(edge));
  }
  resp.cost_s = rng.uniform(0.0, 100.0);
  resp.complete = rng.chance(0.5);

  const auto via_ascii = core::ascii_decode_response(core::ascii_encode_response(resp));
  const auto via_xml = core::xml_decode_response(core::xml_encode_response(resp));
  ASSERT_TRUE(via_ascii.has_value());
  ASSERT_TRUE(via_xml.has_value());
  for (const auto* decoded : {&*via_ascii, &*via_xml}) {
    EXPECT_EQ(decoded->complete, resp.complete);
    EXPECT_NEAR(decoded->cost_s, resp.cost_s, 1e-6 * (1 + resp.cost_s));
    ASSERT_EQ(decoded->topology.node_count(), resp.topology.node_count());
    ASSERT_EQ(decoded->topology.edge_count(), resp.topology.edge_count());
    for (std::size_t i = 0; i < resp.topology.edge_count(); ++i) {
      const auto& x = resp.topology.edges()[i];
      const auto& y = decoded->topology.edges()[i];
      EXPECT_EQ(x.id, y.id);
      EXPECT_NEAR(y.capacity_bps, x.capacity_bps, 1e-6 * (1 + x.capacity_bps));
      EXPECT_NEAR(y.util_ab_bps, x.util_ab_bps, 1e-6 * (1 + x.util_ab_bps));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolRoundTrip, ::testing::Range<std::uint64_t>(100, 120));

// ---------------------------------------------------------------------------
// Fluid engine conservation: for any random flow set on the shared LAN,
// per-link allocated rate never exceeds capacity, and octet counters equal
// the integral of the allocated rates.
// ---------------------------------------------------------------------------

class FluidConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FluidConservation, RatesFeasibleAndCountersConsistent) {
  sim::Rng rng(GetParam());
  apps::LanTestbed::Params p;
  p.hosts = 10;
  p.switches = 3;
  apps::LanTestbed lan(p);
  std::vector<net::FlowId> flows;
  const int n = static_cast<int>(rng.uniform_int(2, 8));
  for (int i = 0; i < n; ++i) {
    net::FlowSpec spec;
    spec.src = lan.hosts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
    do {
      spec.dst = lan.hosts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
    } while (spec.dst == spec.src);
    if (rng.chance(0.4)) spec.demand_bps = rng.uniform(1e6, 60e6);
    flows.push_back(lan.flows->start(std::move(spec)));
  }
  // Feasibility on every directed link.
  for (const net::Link& l : lan.net.links()) {
    EXPECT_LE(lan.flows->directed_link_rate(l.id, true), l.capacity_bps * (1 + 1e-9));
    EXPECT_LE(lan.flows->directed_link_rate(l.id, false), l.capacity_bps * (1 + 1e-9));
  }
  // Counter consistency over a fixed window (rates are constant here).
  std::map<std::pair<net::LinkId, bool>, double> expected;
  for (const net::Link& l : lan.net.links()) {
    expected[{l.id, true}] = lan.flows->directed_link_rate(l.id, true);
    expected[{l.id, false}] = lan.flows->directed_link_rate(l.id, false);
  }
  std::map<std::pair<net::LinkId, bool>, std::uint64_t> before;
  lan.flows->sync();
  for (const net::Link& l : lan.net.links()) {
    before[{l.id, true}] = lan.net.egress_interface(net::Hop{l.id, true}).out_octets;
    before[{l.id, false}] = lan.net.egress_interface(net::Hop{l.id, false}).out_octets;
  }
  lan.engine.advance(3.0);
  lan.flows->sync();
  for (const net::Link& l : lan.net.links()) {
    for (bool dir : {true, false}) {
      const auto now = lan.net.egress_interface(net::Hop{l.id, dir}).out_octets;
      const double delta = static_cast<double>(now - before[{l.id, dir}]);
      const double want = expected[{l.id, dir}] / 8.0 * 3.0;
      EXPECT_NEAR(delta, want, 16.0) << "link " << l.id << " dir " << dir;
    }
  }
  for (net::FlowId f : flows) lan.flows->stop(f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidConservation, ::testing::Range<std::uint64_t>(200, 215));

}  // namespace
}  // namespace remos
