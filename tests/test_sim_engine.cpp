// Engine: clock semantics, run_until, periodic tasks, cancellation.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace remos::sim {
namespace {

TEST(Engine, ClockStartsAtZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
}

TEST(Engine, AfterSchedulesRelative) {
  Engine e;
  double fired_at = -1.0;
  e.after(2.5, [&] { fired_at = e.now(); });
  e.run_until(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);  // clock advances to the horizon
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine e;
  e.advance(5.0);
  double fired_at = -1.0;
  e.after(-3.0, [&] { fired_at = e.now(); });
  e.run_until(6.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  int count = 0;
  e.after(1.0, [&] { ++count; });
  e.after(5.0, [&] { ++count; });
  e.run_until(3.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  e.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Engine, EventAtExactHorizonFires) {
  Engine e;
  bool fired = false;
  e.after(3.0, [&] { fired = true; });
  e.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  std::vector<double> times;
  e.after(1.0, [&] {
    times.push_back(e.now());
    e.after(1.0, [&] { times.push_back(e.now()); });
  });
  e.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Engine, CancelledEventDoesNotFire) {
  Engine e;
  bool fired = false;
  EventId id = e.after(1.0, [&] { fired = true; });
  e.cancel(id);
  e.run_until(5.0);
  EXPECT_FALSE(fired);
}

TEST(Engine, PeriodicTaskFiresAtPeriod) {
  Engine e;
  std::vector<double> times;
  e.every(2.0, [&] { times.push_back(e.now()); });
  e.run_until(7.0);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 2.0);
  EXPECT_DOUBLE_EQ(times[1], 4.0);
  EXPECT_DOUBLE_EQ(times[2], 6.0);
}

TEST(Engine, PeriodicTaskWithPhase) {
  Engine e;
  std::vector<double> times;
  e.every(5.0, [&] { times.push_back(e.now()); }, /*phase=*/1.0);
  e.run_until(12.0);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 6.0);
  EXPECT_DOUBLE_EQ(times[2], 11.0);
}

TEST(Engine, CancelTaskStopsFiring) {
  Engine e;
  int count = 0;
  TaskId id = e.every(1.0, [&] { ++count; });
  e.run_until(3.5);
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(e.cancel_task(id));
  e.run_until(10.0);
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(e.cancel_task(id));
}

TEST(Engine, TaskCanCancelItself) {
  Engine e;
  int count = 0;
  TaskId id = 0;
  id = e.every(1.0, [&] {
    if (++count == 2) e.cancel_task(id);
  });
  e.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Engine, InvalidPeriodThrows) {
  Engine e;
  EXPECT_THROW(e.every(0.0, [] {}), std::invalid_argument);
  EXPECT_THROW(e.every(-1.0, [] {}), std::invalid_argument);
}

TEST(Engine, WarpForwardOnly) {
  Engine e;
  e.warp_to(5.0);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_THROW(e.warp_to(1.0), std::invalid_argument);
}

TEST(Engine, WarpPastPendingEventThrows) {
  Engine e;
  e.after(2.0, [] {});
  EXPECT_THROW(e.warp_to(3.0), std::logic_error);
}

TEST(Engine, DispatchedCounter) {
  Engine e;
  e.after(1.0, [] {});
  e.after(2.0, [] {});
  e.run();
  EXPECT_EQ(e.dispatched(), 2u);
}

}  // namespace
}  // namespace remos::sim
