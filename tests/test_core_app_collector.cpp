// Application-feedback (SPAND-like) collector: passive reports, aging,
// query semantics, integration with the mirror application.
#include <gtest/gtest.h>

#include "apps/mirror.hpp"
#include "apps/testbed.hpp"
#include "core/app_collector.hpp"
#include "core/gma.hpp"

namespace remos::core {
namespace {

net::Ipv4Address ip(const char* text) { return *net::Ipv4Address::parse(text); }

AppFeedbackConfig config(double ttl = 300.0) {
  AppFeedbackConfig cfg;
  cfg.domain = {*net::Ipv4Prefix::parse("10.0.0.0/8")};
  cfg.report_ttl_s = ttl;
  return cfg;
}

TEST(AppFeedback, ReportsAccumulatePerPair) {
  sim::Engine engine;
  AppFeedbackCollector c(engine, config());
  c.report(ip("10.0.0.1"), ip("10.0.0.2"), 5e6);
  c.report(ip("10.0.0.2"), ip("10.0.0.1"), 6e6);  // same pair, other direction
  c.report(ip("10.0.0.1"), ip("10.0.0.3"), 2e6);
  EXPECT_EQ(c.reports_received(), 3u);
  EXPECT_EQ(c.pair_count(), 2u);
  EXPECT_DOUBLE_EQ(*c.observed_bandwidth(ip("10.0.0.1"), ip("10.0.0.2")), 6e6);  // latest
  EXPECT_DOUBLE_EQ(*c.mean_bandwidth(ip("10.0.0.1"), ip("10.0.0.2")), 5.5e6);
}

TEST(AppFeedback, InvalidReportsIgnored) {
  sim::Engine engine;
  AppFeedbackCollector c(engine, config());
  c.report(ip("10.0.0.1"), ip("10.0.0.1"), 5e6);  // self pair
  c.report(ip("10.0.0.1"), ip("10.0.0.2"), 0.0);  // no signal
  c.report(ip("10.0.0.1"), ip("10.0.0.2"), -1.0);
  EXPECT_EQ(c.reports_received(), 0u);
}

TEST(AppFeedback, ReportsAgeOut) {
  sim::Engine engine;
  AppFeedbackCollector c(engine, config(/*ttl=*/60.0));
  c.report(ip("10.0.0.1"), ip("10.0.0.2"), 5e6);
  engine.advance(59.0);
  EXPECT_TRUE(c.observed_bandwidth(ip("10.0.0.1"), ip("10.0.0.2")).has_value());
  engine.advance(2.0);
  EXPECT_FALSE(c.observed_bandwidth(ip("10.0.0.1"), ip("10.0.0.2")).has_value());
  EXPECT_FALSE(c.mean_bandwidth(ip("10.0.0.1"), ip("10.0.0.2")).has_value());
}

TEST(AppFeedback, QueryBuildsEdgesForObservedPairs) {
  sim::Engine engine;
  AppFeedbackCollector c(engine, config());
  c.report(ip("10.0.0.1"), ip("10.0.0.2"), 5e6);
  const auto resp = c.query({ip("10.0.0.1"), ip("10.0.0.2"), ip("10.0.0.3")});
  EXPECT_FALSE(resp.complete);  // pairs involving .3 never observed
  ASSERT_EQ(resp.topology.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(resp.topology.edges()[0].capacity_bps, 5e6);
  // The flow-level answer through the passive edge is usable.
  const auto info = single_flow_info(
      resp.topology, FlowRequest{.src = ip("10.0.0.1"), .dst = ip("10.0.0.2")});
  EXPECT_DOUBLE_EQ(info.available_bps, 5e6);
}

TEST(AppFeedback, HistoryExposedByPairId) {
  sim::Engine engine;
  AppFeedbackCollector c(engine, config());
  c.report(ip("10.0.0.2"), ip("10.0.0.1"), 3e6);
  // Keyed by sorted addresses.
  const auto* hist = c.history("app:10.0.0.1-10.0.0.2");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->size(), 1u);
  EXPECT_EQ(c.history("app:10.0.0.9-10.0.0.8"), nullptr);
}

TEST(AppFeedback, MirrorDownloadsFeedThePassiveCollector) {
  // The mirror application's achieved rates, reported after each trial,
  // give the passive collector real data — and its answer agrees with
  // what the downloads actually achieved.
  apps::WanTestbed::Params p;
  p.sites = {{"client", 2, 100e6, 20e6}, {"srv", 2, 100e6, 3e6}};
  p.cross_traffic_load = 0.0;
  apps::WanTestbed wan(p);
  wan.warm_up(60.0);
  AppFeedbackCollector passive(wan.engine, config());

  apps::MirrorClient client(wan.engine, *wan.flows, *wan.modeler, wan.host("client", 1),
                            wan.addr(wan.host("client", 1)),
                            {{"srv", wan.host("srv", 1), wan.addr(wan.host("srv", 1))}});
  const auto r = client.run_trial();
  passive.report(wan.addr(wan.host("srv", 1)), wan.addr(wan.host("client", 1)),
                 r.achieved_bps[0]);
  const auto observed =
      passive.observed_bandwidth(wan.addr(wan.host("srv", 1)), wan.addr(wan.host("client", 1)));
  ASSERT_TRUE(observed.has_value());
  EXPECT_NEAR(*observed, 3e6, 1e6);
}

TEST(GmaModelerProducer, ProducesTopologyAndPredictions) {
  apps::LanTestbed::Params p;
  p.hosts = 4;
  p.switches = 2;
  apps::LanTestbed lan(p);
  ModelerConfig mcfg;
  mcfg.min_history = 16;
  mcfg.prediction_model = rps::ModelSpec::ar(2);
  Modeler modeler(*lan.collector, mcfg);
  gma::ModelerProducer producer(modeler);
  EXPECT_EQ(producer.event_types().size(), 1u);

  const auto nodes = lan.host_addrs(3);
  const auto resp = producer.produce_topology(nodes);
  EXPECT_TRUE(resp.complete);
  EXPECT_GT(resp.cost_s, 0.0);
  EXPECT_EQ(producer.produce_history("anything"), nullptr);

  // End-to-end prediction event after history accumulates.
  (void)modeler.flow_info(nodes[0], nodes[1]);
  lan.engine.advance(5.0 * 20);
  const auto pred = producer.produce_flow_prediction(
      FlowRequest{.src = nodes[0], .dst = nodes[1]}, 5);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->mean_bps.size(), 5u);
}

}  // namespace
}  // namespace remos::core
