// VirtualTopology: node/edge management, merging, shortest paths.
#include <gtest/gtest.h>

#include "core/types.hpp"

namespace remos::core {
namespace {

net::Ipv4Address ip(const char* text) { return *net::Ipv4Address::parse(text); }

TEST(VirtualTopology, EnsureNodeDeduplicatesByName) {
  VirtualTopology t;
  const VNodeIndex a = t.ensure_node(VNode{VNodeKind::kHost, "h1", ip("10.0.0.1")});
  const VNodeIndex b = t.ensure_node(VNode{VNodeKind::kHost, "h1", ip("10.0.0.9")});
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.nodes()[a].addr, ip("10.0.0.1"));  // first writer wins
}

TEST(VirtualTopology, FindByAddrIgnoresZero) {
  VirtualTopology t;
  t.add_node(VNode{VNodeKind::kVirtualSwitch, "vs", {}});
  EXPECT_EQ(t.find_by_addr(net::Ipv4Address{}), kNoVNode);
}

TEST(VirtualTopology, DuplicateEdgeUpdatesMeasurements) {
  VirtualTopology t;
  const VNodeIndex a = t.add_node(VNode{VNodeKind::kHost, "a", ip("10.0.0.1")});
  const VNodeIndex b = t.add_node(VNode{VNodeKind::kHost, "b", ip("10.0.0.2")});
  t.add_edge(VEdge{a, b, 1e6, 100.0, 200.0, 0.0, "e1"});
  t.add_edge(VEdge{a, b, 1e6, 300.0, 400.0, 0.0, "e1"});
  ASSERT_EQ(t.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(t.edges()[0].util_ab_bps, 300.0);
}

TEST(VirtualTopology, DuplicateEdgeFlippedEndpointsSwapsDirections) {
  VirtualTopology t;
  const VNodeIndex a = t.add_node(VNode{VNodeKind::kHost, "a", ip("10.0.0.1")});
  const VNodeIndex b = t.add_node(VNode{VNodeKind::kHost, "b", ip("10.0.0.2")});
  t.add_edge(VEdge{a, b, 1e6, 100.0, 200.0, 0.0, "e1"});
  t.add_edge(VEdge{b, a, 1e6, 999.0, 111.0, 0.0, "e1"});
  ASSERT_EQ(t.edge_count(), 1u);
  // b->a utilization 999 maps onto the stored edge's a<-b direction.
  EXPECT_DOUBLE_EQ(t.edges()[0].util_ab_bps, 111.0);
  EXPECT_DOUBLE_EQ(t.edges()[0].util_ba_bps, 999.0);
}

TEST(VirtualTopology, AvailableBandwidthClampsAtZero) {
  VEdge e;
  e.capacity_bps = 10e6;
  e.util_ab_bps = 12e6;  // over-measured
  e.util_ba_bps = 4e6;
  EXPECT_DOUBLE_EQ(e.available_bps(true), 0.0);
  EXPECT_DOUBLE_EQ(e.available_bps(false), 6e6);
}

TEST(VirtualTopology, MergeUnionsByName) {
  VirtualTopology t1, t2;
  const VNodeIndex a1 = t1.add_node(VNode{VNodeKind::kHost, "a", ip("10.0.0.1")});
  const VNodeIndex r1 = t1.add_node(VNode{VNodeKind::kRouter, "r", ip("10.0.0.254")});
  t1.add_edge(VEdge{a1, r1, 1e6, 0, 0, 0, "a-r"});
  const VNodeIndex r2 = t2.add_node(VNode{VNodeKind::kRouter, "r", ip("10.0.0.254")});
  const VNodeIndex b2 = t2.add_node(VNode{VNodeKind::kHost, "b", ip("10.0.1.1")});
  t2.add_edge(VEdge{r2, b2, 2e6, 0, 0, 0, "r-b"});
  t1.merge(t2);
  EXPECT_EQ(t1.node_count(), 3u);  // r deduplicated
  EXPECT_EQ(t1.edge_count(), 2u);
  // The merged graph connects a to b through r.
  const auto path = t1.shortest_path(t1.find_by_name("a"), t1.find_by_name("b"));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);
}

TEST(VirtualTopology, ShortestPathPrefersFewerHops) {
  VirtualTopology t;
  const VNodeIndex a = t.add_node(VNode{VNodeKind::kHost, "a", ip("1.0.0.1")});
  const VNodeIndex b = t.add_node(VNode{VNodeKind::kHost, "b", ip("1.0.0.2")});
  const VNodeIndex s1 = t.add_node(VNode{VNodeKind::kSwitch, "s1", {}});
  const VNodeIndex s2 = t.add_node(VNode{VNodeKind::kSwitch, "s2", {}});
  t.add_edge(VEdge{a, s1, 1e6, 0, 0, 0, "a-s1"});
  t.add_edge(VEdge{s1, s2, 1e6, 0, 0, 0, "s1-s2"});
  t.add_edge(VEdge{s2, b, 1e6, 0, 0, 0, "s2-b"});
  t.add_edge(VEdge{s1, b, 1e6, 0, 0, 0, "s1-b"});  // shortcut
  const auto path = t.shortest_path(a, b);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);
}

TEST(VirtualTopology, ShortestPathDoesNotTransitHosts) {
  VirtualTopology t;
  const VNodeIndex a = t.add_node(VNode{VNodeKind::kHost, "a", ip("1.0.0.1")});
  const VNodeIndex mid = t.add_node(VNode{VNodeKind::kHost, "mid", ip("1.0.0.3")});
  const VNodeIndex b = t.add_node(VNode{VNodeKind::kHost, "b", ip("1.0.0.2")});
  t.add_edge(VEdge{a, mid, 1e6, 0, 0, 0, "a-mid"});
  t.add_edge(VEdge{mid, b, 1e6, 0, 0, 0, "mid-b"});
  EXPECT_FALSE(t.shortest_path(a, b).has_value());  // hosts do not forward
}

TEST(VirtualTopology, ShortestPathDisconnected) {
  VirtualTopology t;
  const VNodeIndex a = t.add_node(VNode{VNodeKind::kHost, "a", ip("1.0.0.1")});
  const VNodeIndex b = t.add_node(VNode{VNodeKind::kHost, "b", ip("1.0.0.2")});
  EXPECT_FALSE(t.shortest_path(a, b).has_value());
  EXPECT_TRUE(t.shortest_path(a, a)->empty());
}

TEST(VirtualTopology, TextRenderingMentionsNodes) {
  VirtualTopology t;
  const VNodeIndex a = t.add_node(VNode{VNodeKind::kHost, "alpha", ip("1.0.0.1")});
  const VNodeIndex b = t.add_node(VNode{VNodeKind::kRouter, "beta", ip("1.0.0.2")});
  t.add_edge(VEdge{a, b, 5e6, 1e6, 0, 0, "e"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
}

TEST(VirtualTopology, IncidentEdges) {
  VirtualTopology t;
  const VNodeIndex a = t.add_node(VNode{VNodeKind::kHost, "a", ip("1.0.0.1")});
  const VNodeIndex b = t.add_node(VNode{VNodeKind::kSwitch, "b", {}});
  const VNodeIndex c = t.add_node(VNode{VNodeKind::kHost, "c", ip("1.0.0.2")});
  t.add_edge(VEdge{a, b, 1, 0, 0, 0, "ab"});
  t.add_edge(VEdge{b, c, 1, 0, 0, 0, "bc"});
  EXPECT_EQ(t.incident_edges(b).size(), 2u);
  EXPECT_EQ(t.incident_edges(a).size(), 1u);
}

}  // namespace
}  // namespace remos::core
