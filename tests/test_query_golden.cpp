// Golden pin of the query surface: a deterministic 256-query transcript —
// mixed topology / flow / predict queries over a warmed multi-site WAN —
// rendered at full float precision (%.17g) and pinned byte-for-byte under
// tests/golden/query/. The simulation is deterministic and the snapshot
// answer functions are pure, so any byte of drift is a behavior change in
// the query path (routing, max-min, prediction, or snapshot assembly),
// not noise. CI also diffs the transcript produced by the TSan build
// against this pin: identical bytes from an instrumented build is the
// cheap cross-check that instrumentation didn't perturb float math.
//
// REMOS_REGEN_GOLDEN=1 regenerates after an intentional behavior change
// (say what moved in the commit message).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/testbed.hpp"
#include "core/query_server.hpp"
#include "query_fleet.hpp"

namespace remos::core {
namespace {

using apps::WanTestbed;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void golden_check(const std::string& name, const std::string& text) {
  const std::string path = std::string(REMOS_GOLDEN_DIR) + "/query/" + name;
  if (std::getenv("REMOS_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    return;
  }
  const std::string pinned = read_file(path);
  ASSERT_FALSE(pinned.empty()) << path << " missing — run with REMOS_REGEN_GOLDEN=1";
  EXPECT_EQ(text, pinned) << name << ": query transcript drifted — intentional behavior "
                          << "change? regenerate and say what moved";
}

const char* kind_name(fleet::Query::Kind k) {
  switch (k) {
    case fleet::Query::Kind::kTopology:
      return "topology";
    case fleet::Query::Kind::kFlow:
      return "flow";
    case fleet::Query::Kind::kPredict:
      return "predict";
  }
  return "?";
}

TEST(QueryGolden, TranscriptPinned) {
  WanTestbed::Params p;
  p.sites = {{"cmu", 3, 100e6, 10e6}, {"eth", 3, 100e6, 4e6}, {"ucsd", 2, 100e6, 6e6}};
  p.cross_traffic_load = 0.3;
  WanTestbed w(p);
  w.warm_up(16.0 * w.params.benchmark_period_s + 30.0);

  std::vector<net::Ipv4Address> universe;
  for (const auto& site : w.sites) {
    for (net::NodeId h : site.hosts) universe.push_back(w.addr(h));
  }
  QueryServerConfig cfg;
  cfg.prediction_model = rps::ModelSpec::ar(4);
  cfg.min_history = 16;
  QueryServer server(*w.master, universe, cfg);
  server.refresh();

  const auto queries = fleet::make_workload(universe, 256, /*seed=*/0x60D1DEAu);
  std::string transcript;
  std::size_t predictions = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    transcript += "=== query " + std::to_string(i) + " " + kind_name(queries[i].kind) + " ===\n";
    const std::string answer = fleet::answer_query(server, queries[i], /*locked=*/false);
    if (queries[i].kind == fleet::Query::Kind::kPredict && answer != "predict none\n") {
      ++predictions;
    }
    transcript += answer;
  }
  // A transcript without real predictions would freeze much less surface.
  EXPECT_GT(predictions, 0u);
  golden_check("transcript.txt", transcript);
}

}  // namespace
}  // namespace remos::core
