// Benchmark Collector probing + Master Collector query decomposition.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"

namespace remos::core {
namespace {

using apps::WanTestbed;

WanTestbed::Params two_sites() {
  WanTestbed::Params p;
  p.sites = {{"cmu", 3, 100e6, 10e6}, {"eth", 3, 100e6, 4e6}};
  p.cross_traffic_load = 0.0;  // quiet network unless a test adds load
  return p;
}

TEST(BenchmarkCollector, MeasuresBottleneckBandwidth) {
  WanTestbed w(two_sites());
  double measured = -1.0;
  ASSERT_TRUE(w.benchmark->measure_now("cmu", "eth", [&](double bps) { measured = bps; }));
  w.engine.advance(10.0);
  // The cmu-eth path is bounded by eth's 4 Mb/s access link.
  EXPECT_NEAR(measured, 4e6, 1e5);
  EXPECT_EQ(w.benchmark->probes_completed(), 1u);
}

TEST(BenchmarkCollector, RejectsUnknownSiteAndInFlightDuplicates) {
  WanTestbed w(two_sites());
  EXPECT_FALSE(w.benchmark->measure_now("cmu", "nowhere"));
  EXPECT_TRUE(w.benchmark->measure_now("cmu", "eth"));
  EXPECT_FALSE(w.benchmark->measure_now("cmu", "eth"));  // already probing
  w.engine.advance(10.0);
  EXPECT_TRUE(w.benchmark->measure_now("cmu", "eth"));  // done, allowed again
}

TEST(BenchmarkCollector, PeriodicModeBuildsHistory) {
  WanTestbed::Params p = two_sites();
  p.benchmark_period_s = 5.0;
  WanTestbed w(p);
  w.warm_up(61.0);
  const auto* hist = w.benchmark->pair_history("cmu", "eth");
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->size(), 10u);
}

TEST(BenchmarkCollector, IntrusivenessAccounted) {
  WanTestbed w(two_sites());
  EXPECT_EQ(w.benchmark->bytes_injected(), 0u);
  w.benchmark->measure_now("cmu", "eth");
  EXPECT_EQ(w.benchmark->bytes_injected(), w.params.probe_bytes);
}

TEST(BenchmarkCollector, AvailableBandwidthCachesAndRefreshes) {
  WanTestbed w(two_sites());
  // Nothing measured yet: nullopt, but a probe gets scheduled.
  EXPECT_FALSE(w.benchmark->available_bandwidth("cmu", "eth").has_value());
  w.engine.advance(10.0);
  const auto bw = w.benchmark->available_bandwidth("cmu", "eth");
  ASSERT_TRUE(bw.has_value());
  EXPECT_NEAR(*bw, 4e6, 1e5);
}

TEST(BenchmarkCollector, CrossTrafficReducesMeasurement) {
  WanTestbed::Params p = two_sites();
  p.site_cross_load = {0.0, 0.6};  // load eth's access link
  WanTestbed w(p);
  w.warm_up(30.0);
  double measured = -1.0;
  // Wait for any in-flight periodic probe, then measure explicitly.
  for (int tries = 0; tries < 20 && measured < 0; ++tries) {
    w.benchmark->measure_now("eth", "cmu", [&](double bps) { measured = bps; });
    w.engine.advance(5.0);
  }
  ASSERT_GT(measured, 0.0);
  EXPECT_LT(measured, 4e6);  // cross traffic steals capacity
}

TEST(CollectorDirectory, LongestPrefixMatch) {
  WanTestbed w(two_sites());
  const auto& dir = w.master->directory();
  EXPECT_GE(dir.size(), 2u);
  const auto cmu_host = w.addr(w.host("cmu", 0));
  Collector* c = dir.lookup(cmu_host);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name(), "cmu-snmp");
  EXPECT_EQ(dir.lookup(*net::Ipv4Address::parse("192.0.2.1")), nullptr);
}

TEST(CollectorDirectory, UnregisterRemoves) {
  CollectorDirectory dir;
  WanTestbed w(two_sites());
  dir.register_collector(*w.sites[0].collector);
  EXPECT_GT(dir.size(), 0u);
  dir.unregister(*w.sites[0].collector);
  EXPECT_EQ(dir.size(), 0u);
}

TEST(MasterCollector, SingleSiteQueryPassesThrough) {
  WanTestbed w(two_sites());
  const auto a = w.addr(w.host("cmu", 0));
  const auto b = w.addr(w.host("cmu", 1));
  const CollectorResponse resp = w.master->query({a, b});
  EXPECT_TRUE(resp.complete);
  const auto path =
      resp.topology.shortest_path(resp.topology.find_by_addr(a), resp.topology.find_by_addr(b));
  EXPECT_TRUE(path.has_value());
}

TEST(MasterCollector, MultiSiteQueryStitchesWanEdge) {
  WanTestbed w(two_sites());
  w.warm_up(30.0);  // let benchmark measure the pair
  const auto a = w.addr(w.host("cmu", 1));
  const auto b = w.addr(w.host("eth", 1));
  const CollectorResponse resp = w.master->query({a, b});
  EXPECT_TRUE(resp.complete);
  // The merged topology routes a -> b across the WAN edge.
  const auto path =
      resp.topology.shortest_path(resp.topology.find_by_addr(a), resp.topology.find_by_addr(b));
  ASSERT_TRUE(path.has_value());
  bool saw_wan = false;
  for (std::size_t ei : *path) {
    if (resp.topology.edges()[ei].id.starts_with("wan:")) saw_wan = true;
  }
  EXPECT_TRUE(saw_wan);
}

TEST(MasterCollector, WanEdgeCarriesBenchmarkBandwidth) {
  WanTestbed w(two_sites());
  w.warm_up(30.0);
  const CollectorResponse resp =
      w.master->query({w.addr(w.host("cmu", 0)), w.addr(w.host("eth", 0))});
  for (const VEdge& e : resp.topology.edges()) {
    if (e.id.starts_with("wan:")) {
      EXPECT_NEAR(e.capacity_bps, 4e6, 4e5);
      return;
    }
  }
  FAIL() << "no WAN edge in merged topology";
}

TEST(MasterCollector, UnknownNodeMarksIncomplete) {
  WanTestbed w(two_sites());
  const auto resp = w.master->query({*net::Ipv4Address::parse("203.0.113.9")});
  EXPECT_FALSE(resp.complete);
}

TEST(MasterCollector, WithoutBenchmarkMultiSiteIncomplete) {
  WanTestbed w(two_sites());
  w.master->set_benchmark(nullptr);
  const auto resp = w.master->query({w.addr(w.host("cmu", 0)), w.addr(w.host("eth", 0))});
  EXPECT_FALSE(resp.complete);
}

TEST(MasterCollector, HistoryDelegation) {
  WanTestbed w(two_sites());
  w.warm_up(40.0);
  // Benchmark histories surface with the "wan:" prefix.
  EXPECT_NE(w.master->history("wan:cmu-eth"), nullptr);
  EXPECT_EQ(w.master->history("wan:eth-xyz"), nullptr);
}

TEST(MasterCollector, ThreeSitesAllPairsStitched) {
  WanTestbed::Params p;
  p.sites = {{"a", 2, 100e6, 10e6}, {"b", 2, 100e6, 5e6}, {"c", 2, 100e6, 2e6}};
  p.cross_traffic_load = 0.0;
  WanTestbed w(p);
  w.warm_up(40.0);
  const auto resp = w.master->query(
      {w.addr(w.host("a", 0)), w.addr(w.host("b", 0)), w.addr(w.host("c", 0))});
  std::size_t wan_edges = 0;
  for (const VEdge& e : resp.topology.edges()) {
    if (e.id.starts_with("wan:")) ++wan_edges;
  }
  EXPECT_EQ(wan_edges, 3u);  // a-b, a-c, b-c
}

TEST(MasterCollector, HierarchicalMasterAsSite) {
  // A top-level master whose "site" is another master (the paper's layered
  // collectors): queries delegate transparently.
  WanTestbed w(two_sites());
  w.warm_up(30.0);
  MasterCollector top(MasterCollectorConfig{"top-master", 0.002, true});
  top.add_site(MasterCollector::Site{"federation", w.master.get(), {}});
  const auto a = w.addr(w.host("cmu", 0));
  const auto b = w.addr(w.host("eth", 0));
  const auto resp = top.query({a, b});
  EXPECT_TRUE(resp.complete);
  EXPECT_TRUE(resp.topology
                  .shortest_path(resp.topology.find_by_addr(a), resp.topology.find_by_addr(b))
                  .has_value());
}

}  // namespace
}  // namespace remos::core
