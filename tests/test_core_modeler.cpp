// Modeler: Remos API semantics — topology simplification, flow queries,
// predictions, query-cost reporting.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "core/modeler.hpp"

namespace remos::core {
namespace {

using apps::LanTestbed;
using apps::WanTestbed;

WanTestbed::Params two_sites() {
  WanTestbed::Params p;
  p.sites = {{"cmu", 3, 100e6, 10e6}, {"eth", 3, 100e6, 4e6}};
  p.cross_traffic_load = 0.0;
  return p;
}

TEST(Modeler, FlowInfoReportsBottleneck) {
  WanTestbed w(two_sites());
  w.warm_up(30.0);
  const FlowInfo info =
      w.modeler->flow_info(w.addr(w.host("eth", 0)), w.addr(w.host("cmu", 0)));
  EXPECT_TRUE(info.routable());
  EXPECT_NEAR(info.available_bps, 4e6, 4e5);
}

TEST(Modeler, FlowQuerySharesWanBottleneck) {
  WanTestbed w(two_sites());
  w.warm_up(30.0);
  FlowQuery q;
  q.flows.push_back(FlowRequest{.src = w.addr(w.host("cmu", 0)), .dst = w.addr(w.host("eth", 0))});
  q.flows.push_back(FlowRequest{.src = w.addr(w.host("cmu", 1)), .dst = w.addr(w.host("eth", 1))});
  const auto infos = w.modeler->flow_query(q);
  ASSERT_EQ(infos.size(), 2u);
  // Both flows cross the same measured WAN edge: max-min splits it.
  EXPECT_NEAR(infos[0].available_bps, infos[1].available_bps, 1e3);
  EXPECT_LT(infos[0].available_bps, 3e6);
}

TEST(Modeler, LastQueryCostExposed) {
  WanTestbed w(two_sites());
  w.warm_up(30.0);
  (void)w.modeler->flow_info(w.addr(w.host("cmu", 0)), w.addr(w.host("eth", 0)));
  EXPECT_GT(w.modeler->last_query_cost_s(), 0.0);
  EXPECT_TRUE(w.modeler->last_query_complete());
}

TEST(Modeler, TopologyQuerySimplifiesSwitches) {
  LanTestbed::Params p;
  p.hosts = 6;
  p.switches = 3;
  LanTestbed lan(p);
  Modeler modeler(*lan.collector);
  const auto nodes = lan.host_addrs(6);
  const VirtualTopology topo = modeler.topology_query(nodes);
  // The 3-switch chain collapses into one virtual switch.
  std::size_t switches = 0, vswitches = 0;
  for (const VNode& n : topo.nodes()) {
    if (n.kind == VNodeKind::kSwitch) ++switches;
    if (n.kind == VNodeKind::kVirtualSwitch) ++vswitches;
  }
  EXPECT_EQ(switches, 0u);
  EXPECT_EQ(vswitches, 1u);
  // Hosts keep their identity and access capacity.
  for (const auto addr : nodes) {
    const VNodeIndex v = topo.find_by_addr(addr);
    ASSERT_NE(v, kNoVNode);
    const auto incident = topo.incident_edges(v);
    ASSERT_EQ(incident.size(), 1u);
    EXPECT_DOUBLE_EQ(topo.edges()[incident[0]].capacity_bps, 100e6);
  }
}

TEST(Modeler, SimplifyPreservesConnectivity) {
  LanTestbed::Params p;
  p.hosts = 8;
  p.switches = 4;
  LanTestbed lan(p);
  Modeler modeler(*lan.collector);
  const auto nodes = lan.host_addrs(8);
  const VirtualTopology topo = modeler.topology_query(nodes);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_TRUE(topo.shortest_path(topo.find_by_addr(nodes[0]), topo.find_by_addr(nodes[i]))
                    .has_value())
        << i;
  }
}

TEST(Modeler, SimplifyCanBeDisabled) {
  LanTestbed::Params p;
  p.hosts = 4;
  p.switches = 2;
  LanTestbed lan(p);
  ModelerConfig cfg;
  cfg.simplify_topology = false;
  Modeler modeler(*lan.collector, cfg);
  const VirtualTopology topo = modeler.topology_query(lan.host_addrs(4));
  std::size_t switches = 0;
  for (const VNode& n : topo.nodes()) {
    if (n.kind == VNodeKind::kSwitch) ++switches;
  }
  EXPECT_EQ(switches, 2u);
}

TEST(Modeler, SimplifyStaticFunction) {
  VirtualTopology t;
  const auto h1 = t.add_node(VNode{VNodeKind::kHost, "h1", *net::Ipv4Address::parse("1.0.0.1")});
  const auto s1 = t.add_node(VNode{VNodeKind::kSwitch, "s1", {}});
  const auto s2 = t.add_node(VNode{VNodeKind::kSwitch, "s2", {}});
  const auto h2 = t.add_node(VNode{VNodeKind::kHost, "h2", *net::Ipv4Address::parse("1.0.0.2")});
  t.add_edge(VEdge{h1, s1, 100e6, 5e6, 0, 0, "e1"});
  t.add_edge(VEdge{s1, s2, 1e9, 0, 0, 0, "trunk"});
  t.add_edge(VEdge{s2, h2, 100e6, 0, 0, 0, "e2"});
  const VirtualTopology simple = Modeler::simplify(t);
  EXPECT_EQ(simple.node_count(), 3u);
  EXPECT_EQ(simple.edge_count(), 2u);
  // Utilization annotations survive the collapse.
  bool saw_util = false;
  for (const VEdge& e : simple.edges()) saw_util |= (e.util_ab_bps == 5e6);
  EXPECT_TRUE(saw_util);
}

TEST(Modeler, PredictFlowUsesHistory) {
  WanTestbed w(two_sites());
  // Long warm-up so the WAN benchmark history has >= min_history samples.
  ModelerConfig cfg;
  cfg.min_history = 16;
  cfg.prediction_model = rps::ModelSpec::ar(4);
  Modeler modeler(*w.master, cfg);
  w.warm_up(16.0 * w.params.benchmark_period_s + 30.0);
  const auto pred = modeler.predict_flow(
      FlowRequest{.src = w.addr(w.host("cmu", 0)), .dst = w.addr(w.host("eth", 0))}, 10);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->mean_bps.size(), 10u);
  EXPECT_EQ(pred->model_name, "AR4");
  // Prediction should land near the quiet-network bandwidth, and within
  // physical bounds.
  for (double v : pred->mean_bps) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 4e6 * 1.01);
  }
  EXPECT_NEAR(pred->mean_bps[0], 4e6, 8e5);
}

TEST(Modeler, PredictFlowWithoutHistoryNullopt) {
  WanTestbed w(two_sites());
  Modeler modeler(*w.master);
  // No warm-up: benchmark history empty -> no prediction.
  const auto pred = modeler.predict_flow(
      FlowRequest{.src = w.addr(w.host("cmu", 0)), .dst = w.addr(w.host("eth", 0))}, 5);
  EXPECT_FALSE(pred.has_value());
}

TEST(Modeler, UnroutableFlowZeroInfo) {
  WanTestbed w(two_sites());
  const FlowInfo info =
      w.modeler->flow_info(w.addr(w.host("cmu", 0)), *net::Ipv4Address::parse("198.51.100.7"));
  EXPECT_FALSE(info.routable());
  EXPECT_DOUBLE_EQ(info.available_bps, 0.0);
}

TEST(Modeler, DuplicateEndpointsHandled) {
  WanTestbed w(two_sites());
  FlowQuery q;
  const auto a = w.addr(w.host("cmu", 0));
  const auto b = w.addr(w.host("cmu", 1));
  q.flows.push_back(FlowRequest{.src = a, .dst = b});
  q.flows.push_back(FlowRequest{.src = b, .dst = a});
  const auto infos = w.modeler->flow_query(q);
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_TRUE(infos[0].routable());
  EXPECT_TRUE(infos[1].routable());
}

}  // namespace
}  // namespace remos::core
