// Network construction, finalize(): segments, subnets, FDBs, gateways.
#include <gtest/gtest.h>

#include "net/l2.hpp"
#include "net/topology.hpp"

namespace remos::net {
namespace {

/// router -- sw0 -- sw1, hosts split across the two switches.
Network switched_lan() {
  Network net("lan");
  const NodeId r = net.add_router("r");
  const NodeId s0 = net.add_switch("s0");
  const NodeId s1 = net.add_switch("s1");
  net.connect(r, s0, 1e9);
  net.connect(s0, s1, 1e9);
  net.connect(net.add_host("a"), s0, 100e6);
  net.connect(net.add_host("b"), s1, 100e6);
  net.connect(net.add_host("c"), s1, 100e6);
  net.finalize();
  return net;
}

TEST(Topology, NamesMustBeUnique) {
  Network net;
  net.add_host("x");
  EXPECT_THROW(net.add_host("x"), std::invalid_argument);
}

TEST(Topology, SelfLinkRejected) {
  Network net;
  const NodeId h = net.add_host("h");
  EXPECT_THROW(net.connect(h, h, 1e6), std::invalid_argument);
}

TEST(Topology, NonPositiveCapacityRejected) {
  Network net;
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  EXPECT_THROW(net.connect(a, b, 0.0), std::invalid_argument);
}

TEST(Topology, MutationAfterFinalizeRejected) {
  Network net;
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  net.connect(a, b, 1e6);
  net.finalize();
  EXPECT_THROW(net.add_host("c"), std::logic_error);
  EXPECT_THROW(net.connect(a, b, 1e6), std::logic_error);
  EXPECT_THROW(net.finalize(), std::logic_error);
}

TEST(Topology, PointToPointLinkIsOwnSegment) {
  Network net;
  const NodeId a = net.add_host("a");
  const NodeId r = net.add_router("r");
  const NodeId b = net.add_host("b");
  net.connect(a, r, 1e6);
  net.connect(r, b, 1e6);
  net.finalize();
  EXPECT_EQ(net.segment_count(), 2u);
  EXPECT_NE(net.link(0).segment, net.link(1).segment);
}

TEST(Topology, SwitchMergesLinksIntoOneSegment) {
  const Network net = switched_lan();
  // All 5 links belong to one L2 segment.
  EXPECT_EQ(net.segment_count(), 1u);
  const Segment& s = net.segment(0);
  EXPECT_EQ(s.links.size(), 5u);
  EXPECT_EQ(s.bridges.size(), 2u);
  EXPECT_EQ(s.attachments.size(), 4u);  // router + 3 hosts
}

TEST(Topology, SubnetAssignedToAttachments) {
  const Network net = switched_lan();
  const Segment& s = net.segment(0);
  for (auto [node_id, ifidx] : s.attachments) {
    const Interface* ifc = net.node(node_id).find_interface(ifidx);
    ASSERT_NE(ifc, nullptr);
    EXPECT_FALSE(ifc->addr.is_zero());
    EXPECT_TRUE(s.prefix.contains(ifc->addr));
  }
}

TEST(Topology, AddressesAreUniqueAndReverseMapped) {
  const Network net = switched_lan();
  for (const Node& n : net.nodes()) {
    const Ipv4Address addr = n.primary_address();
    if (addr.is_zero()) continue;
    EXPECT_EQ(net.node_by_ip(addr), n.id) << n.name;
  }
}

TEST(Topology, SwitchesGetManagementAddresses) {
  const Network net = switched_lan();
  for (const Node& n : net.nodes()) {
    if (n.kind == NodeKind::kSwitch) {
      EXPECT_FALSE(n.primary_address().is_zero()) << n.name;
      EXPECT_TRUE(net.segment(0).prefix.contains(n.primary_address()));
    }
  }
}

TEST(Topology, HostsGetGatewayFromSegment) {
  const Network net = switched_lan();
  const NodeId r = net.find_node("r");
  for (const char* name : {"a", "b", "c"}) {
    EXPECT_EQ(net.node(net.find_node(name)).gateway, r) << name;
  }
}

TEST(Topology, ExplicitGatewayPreserved) {
  Network net;
  const NodeId h = net.add_host("h");
  const NodeId r1 = net.add_router("r1");
  const NodeId r2 = net.add_router("r2");
  const NodeId sw = net.add_switch("sw");
  net.connect(h, sw, 1e6);
  net.connect(r1, sw, 1e6);
  net.connect(r2, sw, 1e6);
  net.set_gateway(h, r2);
  net.finalize();
  EXPECT_EQ(net.node(h).gateway, r2);
}

TEST(Topology, FdbCoversAllEndpoints) {
  const Network net = switched_lan();
  for (const Node& n : net.nodes()) {
    if (n.kind != NodeKind::kSwitch) continue;
    // Every endpoint (router + 3 hosts) must be in each switch's FDB.
    EXPECT_EQ(n.fdb.size(), 4u) << n.name;
  }
}

TEST(Topology, FdbPointsTowardEndpoint) {
  const Network net = switched_lan();
  const Node& s0 = net.node(net.find_node("s0"));
  const Node& host_b = net.node(net.find_node("b"));
  // b hangs off s1; from s0, b must be behind the trunk port to s1.
  const auto port = s0.fdb.at(host_b.mac);
  const Interface* ifc = s0.find_interface(port);
  ASSERT_NE(ifc, nullptr);
  const Link& l = net.link(ifc->link);
  EXPECT_EQ(l.other(s0.id), net.find_node("s1"));
}

TEST(Topology, SpanningTreeBlocksLoop) {
  Network net;
  const NodeId s0 = net.add_switch("s0");
  const NodeId s1 = net.add_switch("s1");
  const NodeId s2 = net.add_switch("s2");
  net.connect(s0, s1, 1e9);
  net.connect(s1, s2, 1e9);
  net.connect(s2, s0, 1e9);  // loop
  net.connect(net.add_host("h0"), s0, 1e8);
  net.connect(net.add_host("h1"), s1, 1e8);
  net.connect(net.add_host("h2"), s2, 1e8);
  net.finalize();
  std::size_t blocked = 0;
  for (const Link& l : net.links()) {
    if (!l.forwarding) ++blocked;
  }
  EXPECT_EQ(blocked, 1u);
  EXPECT_TRUE(forwarding_topology_is_tree(net, 0));
}

TEST(Topology, HubSegmentMarkedShared) {
  Network net;
  const NodeId hub = net.add_hub("hub", 10e6);
  net.connect(net.add_host("a"), hub, 10e6);
  net.connect(net.add_host("b"), hub, 10e6);
  net.finalize();
  const Segment& s = net.segment(0);
  EXPECT_TRUE(s.shared);
  EXPECT_DOUBLE_EQ(s.shared_capacity_bps, 10e6);
}

TEST(Topology, VersionBumpsOnMove) {
  Network net;
  const NodeId s0 = net.add_switch("s0");
  const NodeId s1 = net.add_switch("s1");
  net.connect(s0, s1, 1e9);
  const NodeId h = net.add_host("h");
  net.connect(h, s0, 1e8);
  net.connect(net.add_host("anchor"), s1, 1e8);
  net.finalize();
  EXPECT_EQ(net.version(), 0u);
  net.move_host(h, s1, 1e8);
  EXPECT_EQ(net.version(), 1u);
}

TEST(Topology, MoveHostRelearnsFdb) {
  Network net;
  const NodeId s0 = net.add_switch("s0");
  const NodeId s1 = net.add_switch("s1");
  net.connect(s0, s1, 1e9);
  const NodeId h = net.add_host("h");
  net.connect(h, s0, 1e8);
  net.connect(net.add_host("anchor"), s1, 1e8);
  net.finalize();

  const auto before = host_attachment(net, h);
  EXPECT_EQ(before.device, s0);
  net.move_host(h, s1, 1e8);
  const auto after = host_attachment(net, h);
  EXPECT_EQ(after.device, s1);
  // s0 now sees h through its trunk to s1.
  const Node& sw0 = net.node(s0);
  const auto port = sw0.fdb.at(net.node(h).mac);
  const Interface* ifc = sw0.find_interface(port);
  ASSERT_NE(ifc, nullptr);
  EXPECT_EQ(net.link(ifc->link).other(s0), s1);
}

TEST(Topology, MoveHostToOtherSegmentRejected) {
  Network net;
  const NodeId s0 = net.add_switch("s0");
  const NodeId s1 = net.add_switch("s1");  // disconnected from s0
  const NodeId h = net.add_host("h");
  net.connect(h, s0, 1e8);
  net.connect(net.add_host("x"), s1, 1e8);
  net.finalize();
  EXPECT_THROW(net.move_host(h, s1, 1e8), std::invalid_argument);
}

TEST(Topology, LookupHelpers) {
  const Network net = switched_lan();
  EXPECT_EQ(net.find_node("nope"), kNone);
  EXPECT_EQ(net.node_by_ip(Ipv4Address(1, 2, 3, 4)), kNone);
  const Node& a = net.node(net.find_node("a"));
  EXPECT_EQ(net.node_by_mac(a.mac), a.id);
}

}  // namespace
}  // namespace remos::net
