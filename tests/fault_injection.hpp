// Scriptable fault injection for collector tests and ablations.
//
// A FaultScript schedules agent failures on the discrete-event engine so
// tests can describe an outage declaratively ("r1 is down during
// [30,60)") and then just advance the clock. Three fault families match
// the §6.2 field reports: hard outages (crash/reboot), lossy agents
// (drop-rate ramps), and credential rotation (community change under the
// collector's feet).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "snmp/agent.hpp"

namespace remos::testing {

class FaultScript {
 public:
  FaultScript(sim::Engine& engine, snmp::AgentRegistry& registry)
      : engine_(engine), registry_(registry) {}

  /// Hard outage: the node's agent times out for every request during
  /// [start, end). The agent object survives MIB rebuilds (the registry
  /// copies failure knobs), so flipping `down` is reliable.
  void outage(net::NodeId node, sim::Time start, sim::Time end) {
    engine_.at(start, [this, node] { set_down(node, true); });
    engine_.at(end, [this, node] { set_down(node, false); });
  }

  /// Lossy agent: ramp drop_probability linearly from `from` to `to`
  /// across [start, end) in `steps` plateaus, then leave it at `to`.
  void drop_ramp(net::NodeId node, sim::Time start, sim::Time end, double from, double to,
                 int steps = 4) {
    if (steps < 1) steps = 1;
    const double dt = (end - start) / steps;
    for (int i = 0; i < steps; ++i) {
      const double p = from + (to - from) * static_cast<double>(i) / steps;
      engine_.at(start + dt * i, [this, node, p] { set_drop(node, p); });
    }
    engine_.at(end, [this, node, to] { set_drop(node, to); });
  }

  /// Credential rotation: at time `at` the device's community string
  /// changes. Collectors still using the old community see auth failures
  /// (indistinguishable from timeouts, per the SNMP spec).
  void rotate_community(net::Network& net, net::NodeId node, sim::Time at,
                        std::string community) {
    engine_.at(at, [&net, node, community = std::move(community)] {
      net.set_snmp(node, true, community);
    });
  }

 private:
  void set_down(net::NodeId node, bool down) {
    if (snmp::Agent* a = registry_.find_by_node(node)) a->down = down;
  }
  void set_drop(net::NodeId node, double p) {
    if (snmp::Agent* a = registry_.find_by_node(node)) a->drop_probability = p;
  }

  sim::Engine& engine_;
  snmp::AgentRegistry& registry_;
};

}  // namespace remos::testing
