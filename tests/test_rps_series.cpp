// Series primitives: moments, autocovariance, differencing (ordinary and
// fractional), forecast integration.
#include <gtest/gtest.h>

#include <cmath>

#include "rps/series.hpp"
#include "sim/rng.hpp"

namespace remos::rps {
namespace {

TEST(Series, MeanAndVariance) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(variance(xs), 2.0);  // n-denominator
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{1.0}), 0.0);
}

TEST(Series, AutocovarianceLagZeroIsVariance) {
  sim::Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal());
  const auto acov = autocovariance(xs, 3);
  EXPECT_NEAR(acov[0], variance(xs), 1e-12);
}

TEST(Series, WhiteNoiseHasNearZeroAcf) {
  sim::Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal());
  const auto acf = autocorrelation(xs, 3);
  EXPECT_DOUBLE_EQ(acf[0], 1.0);
  EXPECT_NEAR(acf[1], 0.0, 0.03);
  EXPECT_NEAR(acf[2], 0.0, 0.03);
}

TEST(Series, Ar1AcfDecaysGeometrically) {
  sim::Rng rng(3);
  std::vector<double> xs{0.0};
  for (int i = 0; i < 50000; ++i) xs.push_back(0.8 * xs.back() + rng.normal());
  const auto acf = autocorrelation(xs, 3);
  EXPECT_NEAR(acf[1], 0.8, 0.03);
  EXPECT_NEAR(acf[2], 0.64, 0.04);
}

TEST(Series, ConstantSeriesAcfIsZero) {
  const std::vector<double> xs(100, 5.0);
  const auto acf = autocorrelation(xs, 2);
  EXPECT_DOUBLE_EQ(acf[1], 0.0);
}

TEST(Series, DifferenceOnce) {
  const std::vector<double> xs{1, 4, 9, 16};
  EXPECT_EQ(difference(xs, 1), (std::vector<double>{3, 5, 7}));
  EXPECT_EQ(difference(xs, 2), (std::vector<double>{2, 2}));
  EXPECT_EQ(difference(xs, 0), xs);
}

TEST(Series, DifferenceOfShortSeriesEmpty) {
  EXPECT_TRUE(difference(std::vector<double>{1.0}, 1).empty());
}

TEST(Series, IntegrationRoundTrip) {
  // Forecasting a linear ramp: difference twice, "forecast" the constant
  // second difference, and integrate back.
  const std::vector<double> xs{1, 3, 6, 10, 15};  // triangle numbers
  const auto tails = integration_tails(xs, 2);
  ASSERT_EQ(tails.size(), 2u);
  EXPECT_DOUBLE_EQ(tails[0], 15.0);  // last value
  EXPECT_DOUBLE_EQ(tails[1], 5.0);   // last first-difference
  const std::vector<double> diff_forecast{1, 1, 1};  // second differences
  const auto restored = integrate_forecast(diff_forecast, tails);
  EXPECT_EQ(restored, (std::vector<double>{21, 28, 36}));
}

TEST(Series, IntegrateWithNoTailsIsIdentity) {
  const std::vector<double> f{2, 4, 6};
  EXPECT_EQ(integrate_forecast(f, {}), f);
}

TEST(Series, FractionalCoeffsMatchIntegerD) {
  // d = 1 gives the classic (1, -1, 0, 0, ...) differencing filter.
  const auto pi = fractional_diff_coeffs(1.0, 5);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
  EXPECT_DOUBLE_EQ(pi[1], -1.0);
  EXPECT_NEAR(pi[2], 0.0, 1e-12);
}

TEST(Series, FractionalCoeffsDecayForFractionalD) {
  const auto pi = fractional_diff_coeffs(0.4, 50);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
  EXPECT_DOUBLE_EQ(pi[1], -0.4);
  // Coefficients decay in magnitude hyperbolically.
  for (std::size_t j = 2; j < 50; ++j) EXPECT_LT(std::fabs(pi[j]), std::fabs(pi[j - 1]));
}

TEST(Series, FractionalInverseCancels) {
  // Applying (1-B)^d then (1-B)^{-d} recovers a zero-mean signal
  // (mid-series, away from truncation warm-up). Note the filter is only
  // an approximate inverse under truncation: a nonzero mean would leave a
  // bias proportional to the truncated coefficient mass.
  sim::Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 400; ++i) xs.push_back(rng.normal(0.0, 1.0));
  const auto filtered = fractional_difference(xs, 0.4, 200);
  const auto restored = fractional_difference(filtered, -0.4, 200);
  for (std::size_t i = 250; i < 400; ++i) EXPECT_NEAR(restored[i], xs[i], 0.1);
}

TEST(Series, FractionalDifferenceReducesLongMemory) {
  // A long-memory-ish signal (integrated noise) has huge lag-1 ACF; after
  // fractional differencing with d close to 1, it drops substantially.
  sim::Rng rng(5);
  std::vector<double> xs{0.0};
  for (int i = 0; i < 5000; ++i) xs.push_back(xs.back() + rng.normal());
  const auto acf_before = autocorrelation(xs, 1);
  const auto filtered = fractional_difference(xs, 0.9, 100);
  const std::vector<double> stable(filtered.begin() + 200, filtered.end());
  const auto acf_after = autocorrelation(stable, 1);
  EXPECT_GT(acf_before[1], 0.95);
  EXPECT_LT(acf_after[1], acf_before[1] - 0.2);
}

TEST(Series, IntegrationTailsTooShortThrows) {
  EXPECT_THROW(integration_tails(std::vector<double>{1.0}, 3), std::invalid_argument);
}

// ---- edge cases: the degenerate inputs fleet-scale feeds produce (empty
// histories, windows shorter than the requested lag/difference order) ----

TEST(Series, EmptySpans) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(variance(empty), 0.0);
  const auto acov = autocovariance(empty, 3);
  ASSERT_EQ(acov.size(), 4u);
  for (double g : acov) EXPECT_DOUBLE_EQ(g, 0.0);
  // Zero lag-0 power: autocorrelation degrades to all-zeros, not NaN.
  const auto acf = autocorrelation(empty, 3);
  for (double r : acf) EXPECT_DOUBLE_EQ(r, 0.0);
  EXPECT_TRUE(difference(empty, 1).empty());
  EXPECT_TRUE(fractional_difference(empty, 0.4, 8).empty());
}

TEST(Series, SingleSampleVarianceIsZero) {
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(mean(one), 42.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Series, AutocovarianceLagBeyondLengthIsZero) {
  const std::vector<double> xs{1.0, 2.0, 4.0};
  const auto acov = autocovariance(xs, 6);  // max_lag >= n
  ASSERT_EQ(acov.size(), 7u);
  EXPECT_GT(acov[0], 0.0);
  for (std::size_t lag = 3; lag <= 6; ++lag) {
    EXPECT_DOUBLE_EQ(acov[lag], 0.0) << "lag " << lag;
  }
}

TEST(Series, DifferenceOrderBeyondLengthEmpty) {
  const std::vector<double> xs{5.0, 7.0, 10.0};
  EXPECT_TRUE(difference(xs, 3).empty());  // d >= n
  EXPECT_TRUE(difference(xs, 5).empty());
  EXPECT_EQ(difference(xs, 2).size(), 1u);
}

TEST(Series, DifferenceZeroIsCopy) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_EQ(difference(xs, 0), xs);
}

TEST(Series, IntegrateForecastTailMismatch) {
  // One-step-ahead round trip at depth 2 anchors the tail convention,
  // then the mismatched shapes: an empty forecast against deep tails and
  // a forecast with no tails at all must both degrade gracefully.
  const std::vector<double> xs{1.0, 3.0, 6.0, 10.0, 15.0, 21.0};
  const auto d2 = difference(xs, 2);
  const auto tails = integration_tails(std::vector<double>(xs.begin(), xs.end() - 1), 2);
  const auto restored = integrate_forecast(std::vector<double>{d2.back()}, tails);
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_DOUBLE_EQ(restored[0], xs.back());

  // Empty forecast: nothing to integrate regardless of tail depth.
  EXPECT_TRUE(integrate_forecast({}, tails).empty());
  // No tails: identity (the d == 0 path).
  const std::vector<double> flat{2.0, 4.0};
  EXPECT_EQ(integrate_forecast(flat, {}), flat);
}

TEST(Series, FractionalCoeffsZeroCount) {
  EXPECT_TRUE(fractional_diff_coeffs(0.4, 0).empty());
}

}  // namespace
}  // namespace remos::rps
