// Reproducibility: identical seeds produce identical simulations — the
// property every experiment in EXPERIMENTS.md depends on.
#include <gtest/gtest.h>

#include "apps/mirror.hpp"
#include "apps/testbed.hpp"

namespace remos {
namespace {

TEST(Determinism, WanTestbedBenchmarkHistoriesIdentical) {
  auto run = [] {
    apps::WanTestbed::Params p;
    p.seed = 99;
    p.sites = {{"a", 2, 100e6, 5e6}, {"b", 2, 100e6, 3e6}};
    p.cross_traffic_load = 0.4;
    apps::WanTestbed w(p);
    w.warm_up(200.0);
    std::vector<double> out;
    const auto* hist = w.benchmark->pair_history("a", "b");
    if (hist != nullptr) out = hist->values();
    return out;
  };
  const auto h1 = run();
  const auto h2 = run();
  ASSERT_FALSE(h1.empty());
  EXPECT_EQ(h1, h2);
}

TEST(Determinism, CollectorCostsIdenticalAcrossRuns) {
  auto run = [] {
    apps::LanTestbed::Params p;
    p.hosts = 12;
    p.switches = 3;
    p.seed = 5;
    apps::LanTestbed lan(p);
    const auto nodes = lan.host_addrs(12);
    std::vector<double> costs;
    costs.push_back(lan.collector->query(nodes).cost_s);
    lan.engine.advance(17.0);
    costs.push_back(lan.collector->query(nodes).cost_s);
    return costs;
  };
  EXPECT_EQ(run(), run());
}

TEST(Determinism, DifferentSeedsDiverge) {
  auto run = [](std::uint64_t seed) {
    apps::WanTestbed::Params p;
    p.seed = seed;
    p.sites = {{"a", 2, 100e6, 5e6}, {"b", 2, 100e6, 3e6}};
    p.cross_traffic_load = 0.4;
    p.cross_period_s = 2.0;
    apps::WanTestbed w(p);
    w.warm_up(200.0);
    const auto* hist = w.benchmark->pair_history("a", "b");
    return hist != nullptr ? hist->values() : std::vector<double>{};
  };
  const auto h1 = run(1);
  const auto h2 = run(2);
  ASSERT_FALSE(h1.empty());
  EXPECT_NE(h1, h2);
}

TEST(Determinism, MirrorTrialIdentical) {
  auto run = [] {
    apps::WanTestbed::Params p;
    p.seed = 7;
    p.sites = {{"client", 2, 100e6, 20e6}, {"x", 2, 100e6, 4e6}, {"y", 2, 100e6, 2e6}};
    p.cross_traffic_load = 0.3;
    apps::WanTestbed wan(p);
    wan.warm_up(60.0);
    apps::MirrorClient client(wan.engine, *wan.flows, *wan.modeler, wan.host("client", 1),
                              wan.addr(wan.host("client", 1)),
                              {{"x", wan.host("x", 1), wan.addr(wan.host("x", 1))},
                               {"y", wan.host("y", 1), wan.addr(wan.host("y", 1))}});
    return client.run_trial();
  };
  const auto r1 = run();
  const auto r2 = run();
  EXPECT_EQ(r1.remos_ranking, r2.remos_ranking);
  EXPECT_EQ(r1.achieved_bps, r2.achieved_bps);
  EXPECT_EQ(r1.remos_bandwidth_bps, r2.remos_bandwidth_bps);
}

}  // namespace
}  // namespace remos
