// Unit coverage for the remos-analyze tokenizer: the lexing corners that
// have bitten (raw strings, digit separators, comment-shaped text inside
// string literals) and the line-anchored annotation side channels every
// pass depends on.
#include "tokenizer.hpp"

#include <gtest/gtest.h>

#include "passes.hpp"

#include <algorithm>

namespace {

using remos::analyze::TokKind;
using remos::analyze::tokenize;

std::vector<std::string> texts_of_kind(const remos::analyze::TokenizedFile& tf,
                                       TokKind kind) {
  std::vector<std::string> out;
  for (const auto& t : tf.tokens) {
    if (t.kind == kind) out.push_back(t.text);
  }
  return out;
}

TEST(AnalyzeTokenizer, BasicKindsAndLines) {
  const auto tf = tokenize("int x = 42;\nreturn x;\n");
  ASSERT_GE(tf.tokens.size(), 7u);
  EXPECT_EQ(tf.tokens[0].kind, TokKind::kIdent);
  EXPECT_EQ(tf.tokens[0].text, "int");
  EXPECT_EQ(tf.tokens[0].line, 1);
  EXPECT_EQ(tf.tokens[3].kind, TokKind::kNumber);
  EXPECT_EQ(tf.tokens[3].text, "42");
  // Second line's tokens carry line 2.
  EXPECT_EQ(tf.tokens[5].text, "return");
  EXPECT_EQ(tf.tokens[5].line, 2);
}

TEST(AnalyzeTokenizer, DigitSeparatorsLexAsOneNumber) {
  const auto tf = tokenize("long big = 1'000'000;\n");
  const auto nums = texts_of_kind(tf, TokKind::kNumber);
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_EQ(nums[0], "1'000'000");
  // And no phantom char literal from the separator.
  EXPECT_TRUE(texts_of_kind(tf, TokKind::kChar).empty());
}

TEST(AnalyzeTokenizer, DigitSeparatorDoesNotSwallowRealCharLiteral) {
  const auto tf = tokenize("char c = 'a'; int n = 7;\n");
  const auto chars = texts_of_kind(tf, TokKind::kChar);
  ASSERT_EQ(chars.size(), 1u);
  const auto nums = texts_of_kind(tf, TokKind::kNumber);
  ASSERT_EQ(nums.size(), 1u);
  EXPECT_EQ(nums[0], "7");
}

TEST(AnalyzeTokenizer, RawStringIsOneTokenAtItsStartLine) {
  const auto tf = tokenize(
      "const char* doc = R\"(line one\nline two // not a comment\n)\";\n"
      "int after = 3;\n");
  // Exactly one string token (content is deliberately dropped — no pass
  // reads it, and comment-shaped text inside must stay inert), anchored at
  // the line the raw string *starts* on.
  const auto strs = texts_of_kind(tf, TokKind::kString);
  ASSERT_EQ(strs.size(), 1u);
  for (const auto& t : tf.tokens) {
    if (t.kind == TokKind::kString) {
      EXPECT_EQ(t.line, 1);
    }
  }
  // Code after the raw string still tokenizes, on the right line.
  bool saw_after = false;
  for (const auto& t : tf.tokens) {
    if (t.kind == TokKind::kIdent && t.text == "after") {
      saw_after = true;
      EXPECT_EQ(t.line, 4);
    }
  }
  EXPECT_TRUE(saw_after);
}

TEST(AnalyzeTokenizer, CommentMarkersInsideStringsAreNotComments) {
  const auto tf = tokenize("const char* url = \"http://example.com\"; int x = 1;\n");
  // The tail of the line must survive the "//" inside the literal.
  const auto idents = texts_of_kind(tf, TokKind::kIdent);
  EXPECT_NE(std::find(idents.begin(), idents.end(), "x"), idents.end());
}

TEST(AnalyzeTokenizer, AnnotationsInsideStringLiteralsAreIgnored) {
  const auto tf = tokenize(
      "const char* doc = R\"(\n"
      "// remos-lock-order(99)\n"
      "// remos-guarded-by(phantom_)\n"
      "// remos-requires(phantom_)\n"
      "// remos-analyze: allow(lock): not real\n"
      ")\";\n"
      "const char* s = \"// remos-lock-order(98)\";\n");
  EXPECT_TRUE(tf.lock_orders.empty());
  EXPECT_TRUE(tf.guarded_by.empty());
  EXPECT_TRUE(tf.requires_held.empty());
  EXPECT_TRUE(tf.suppressions.empty());
}

TEST(AnalyzeTokenizer, LockOrderChannel) {
  const auto tf = tokenize("std::mutex mu_;  // remos-lock-order(15)\n");
  ASSERT_EQ(tf.lock_orders.size(), 1u);
  EXPECT_EQ(tf.lock_orders[0].line, 1);
  EXPECT_EQ(tf.lock_orders[0].order, 15);
}

TEST(AnalyzeTokenizer, GuardedByAndRequiresChannels) {
  const auto tf = tokenize(
      "int a_ = 0;  // remos-guarded-by(mu_)\n"
      "// remos-requires(mu_)\n"
      "void helper();\n");
  ASSERT_EQ(tf.guarded_by.size(), 1u);
  EXPECT_EQ(tf.guarded_by[0].line, 1);
  EXPECT_EQ(tf.guarded_by[0].mutex, "mu_");
  ASSERT_EQ(tf.requires_held.size(), 1u);
  EXPECT_EQ(tf.requires_held[0].line, 2);
  EXPECT_EQ(tf.requires_held[0].mutex, "mu_");
}

TEST(AnalyzeTokenizer, SuppressionChannelAndCommentOnlyFlag) {
  const auto tf = tokenize(
      "// remos-analyze: allow(lock): scheduled lambda runs after release\n"
      "int x = 0;  // remos-analyze: allow(concurrency): lane-disjoint\n"
      "// remos-analyze: allow(audit)\n");
  ASSERT_EQ(tf.suppressions.size(), 3u);
  EXPECT_EQ(tf.suppressions[0].pass, "lock");
  EXPECT_TRUE(tf.suppressions[0].comment_only_line);
  EXPECT_EQ(tf.suppressions[0].justification,
            "scheduled lambda runs after release");
  EXPECT_EQ(tf.suppressions[1].pass, "concurrency");
  EXPECT_FALSE(tf.suppressions[1].comment_only_line);
  // Missing justification is preserved as empty — the report layer turns
  // it into a finding.
  EXPECT_EQ(tf.suppressions[2].pass, "audit");
  EXPECT_TRUE(tf.suppressions[2].justification.empty());
}

TEST(AnalyzeTokenizer, IncludesCollectedPreprocessorSkipped) {
  const auto tf = tokenize(
      "#include \"sim/engine.hpp\"\n"
      "#include <mutex>\n"
      "#define NOISE do_not_tokenize_me\n"
      "int x = 0;\n");
  ASSERT_EQ(tf.includes.size(), 2u);
  EXPECT_EQ(tf.includes[0].path, "sim/engine.hpp");
  EXPECT_TRUE(tf.includes[0].quoted);
  EXPECT_EQ(tf.includes[1].path, "mutex");
  EXPECT_FALSE(tf.includes[1].quoted);
  const auto idents = texts_of_kind(tf, TokKind::kIdent);
  EXPECT_EQ(std::find(idents.begin(), idents.end(), "do_not_tokenize_me"),
            idents.end());
}

TEST(AnalyzeTokenizer, BlockCommentsSkippedAndLinesCounted) {
  const auto tf = tokenize("/* one\ntwo */ int y = 0;\n");
  ASSERT_FALSE(tf.tokens.empty());
  EXPECT_EQ(tf.tokens[0].text, "int");
  EXPECT_EQ(tf.tokens[0].line, 2);
}

TEST(AnalyzeTokenizer, MarkerChannelCapturesStructuralAnnotations) {
  const auto tf = tokenize(
      "// remos-hot\n"
      "void solve();\n"
      "/// remos-published\n"
      "struct Snap {};\n"
      "// remos-hot-leaf\n"
      "std::mutex mu_;\n");
  ASSERT_EQ(tf.markers.size(), 3u);
  EXPECT_EQ(tf.markers[0].name, "hot");
  EXPECT_EQ(tf.markers[0].line, 1);
  EXPECT_TRUE(tf.markers[0].arg.empty());
  // Dashes are part of the marker name, not a separator: hot-leaf is one
  // marker, not `hot` plus trailing prose.
  EXPECT_EQ(tf.markers[1].name, "published");
  EXPECT_EQ(tf.markers[2].name, "hot-leaf");
  // Attachment is the model's job; the tokenizer reports markers unbound.
  for (const auto& ma : tf.markers) EXPECT_FALSE(ma.attached);
}

TEST(AnalyzeTokenizer, MarkerChannelAnchoredAtCommentStart) {
  // Prose that merely *mentions* a marker mid-comment stays inert; only
  // comments that start with `remos-` feed the channel.
  const auto tf = tokenize(
      "// the remos-hot marker is documented in DESIGN.md\n"
      "// see remos-published for the snapshot contract\n"
      "//   remos-hot\n"
      "void f();\n");
  ASSERT_EQ(tf.markers.size(), 1u);
  EXPECT_EQ(tf.markers[0].name, "hot");
  EXPECT_EQ(tf.markers[0].line, 3);
}

TEST(AnalyzeTokenizer, MarkerChannelCarriesArgsAndTypedAnnotations) {
  // Typed channels stay authoritative for their own markers, but the
  // generic channel still records them (passes skip these foreign names
  // when validating) — and captures any (...) argument verbatim.
  const auto tf = tokenize(
      "// remos-lock-order(15)\n"
      "std::mutex mu_;\n"
      "// remos-hot(steady-state)\n"
      "void g();\n");
  ASSERT_EQ(tf.lock_orders.size(), 1u);
  ASSERT_EQ(tf.markers.size(), 2u);
  EXPECT_EQ(tf.markers[0].name, "lock-order");
  EXPECT_EQ(tf.markers[0].arg, "15");
  EXPECT_EQ(tf.markers[1].name, "hot");
  EXPECT_EQ(tf.markers[1].arg, "steady-state");
}

TEST(AnalyzeTokenizer, MarkersInsideStringsAreInert) {
  const auto tf = tokenize(
      "const char* a = \"// remos-hot\";\n"
      "const char* b = R\"(\n"
      "// remos-published\n"
      "// remos-hot-leaf\n"
      ")\";\n");
  EXPECT_TRUE(tf.markers.empty());
}

TEST(AnalyzeClassifyNewSite, DistinguishesAllocatingPlacementAndOperatorDecl) {
  const auto tf = tokenize(
      "int* p = new int(3);\n"
      "Foo* q = new (buf) Foo();\n"
      "void* operator new(std::size_t n);\n");
  std::vector<std::size_t> news;
  for (std::size_t i = 0; i < tf.tokens.size(); ++i) {
    if (tf.tokens[i].kind == TokKind::kIdent && tf.tokens[i].text == "new") {
      news.push_back(i);
    }
  }
  ASSERT_EQ(news.size(), 3u);
  using remos::analyze::NewKind;
  using remos::analyze::classify_new_site;
  EXPECT_EQ(classify_new_site(tf.tokens, news[0]), NewKind::kAllocating);
  EXPECT_EQ(classify_new_site(tf.tokens, news[1]), NewKind::kPlacement);
  EXPECT_EQ(classify_new_site(tf.tokens, news[2]), NewKind::kOperatorDecl);
}

TEST(AnalyzeClassifyNewSite, NewInStringsAndCommentsNeverTokenizes) {
  // The hot-path pass keys on `new` identifier tokens; text inside string
  // literals and comments must never produce one.
  const auto tf = tokenize(
      "const char* s = \"new Foo\";  // new allocation described here\n"
      "/* placement new */ int x = 0;\n");
  const auto idents = texts_of_kind(tf, TokKind::kIdent);
  EXPECT_EQ(std::find(idents.begin(), idents.end(), "new"), idents.end());
}

}  // namespace
