// SNMP Collector: discovery, caching, periodic monitoring, accuracy,
// virtual-switch fallbacks.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "core/snmp_collector.hpp"

namespace remos::core {
namespace {

using apps::LanTestbed;

LanTestbed::Params small_lan() {
  LanTestbed::Params p;
  p.hosts = 8;
  p.switches = 2;
  return p;
}

TEST(SnmpCollector, QueryReturnsConnectedTopology) {
  LanTestbed lan(small_lan());
  const auto nodes = lan.host_addrs(4);
  const CollectorResponse resp = lan.collector->query(nodes);
  EXPECT_TRUE(resp.complete);
  EXPECT_GT(resp.cost_s, 0.0);
  // All four queried hosts are present and mutually reachable.
  for (const auto addr : nodes) {
    EXPECT_NE(resp.topology.find_by_addr(addr), kNoVNode) << addr.to_string();
  }
  const auto path = resp.topology.shortest_path(resp.topology.find_by_addr(nodes[0]),
                                                resp.topology.find_by_addr(nodes[3]));
  EXPECT_TRUE(path.has_value());
}

TEST(SnmpCollector, EdgesCarryCapacities) {
  LanTestbed lan(small_lan());
  const auto resp = lan.collector->query(lan.host_addrs(2));
  ASSERT_GT(resp.topology.edge_count(), 0u);
  for (const VEdge& e : resp.topology.edges()) {
    EXPECT_GT(e.capacity_bps, 0.0) << e.id;
  }
}

TEST(SnmpCollector, WarmCacheIsMuchCheaper) {
  LanTestbed lan(small_lan());
  const auto nodes = lan.host_addrs(8);
  const double cold = lan.collector->query(nodes).cost_s;
  const double warm = lan.collector->query(nodes).cost_s;
  EXPECT_LT(warm, cold / 3.0);  // the paper's "factor of three or more"
}

TEST(SnmpCollector, CacheDisabledStaysExpensive) {
  LanTestbed lan(small_lan());
  // Build an identical testbed but with caching off.
  LanTestbed::Params p = small_lan();
  LanTestbed lan2(p);
  auto cfg_nodes = lan2.host_addrs(8);
  // Hack-free approach: construct a second collector with caching off.
  core::SnmpCollectorConfig scfg = lan2.collector->config();
  scfg.cache_enabled = false;
  scfg.name = "no-cache";
  core::SnmpCollector nocache(lan2.engine, *lan2.agents, scfg);
  const double first = nocache.query(cfg_nodes).cost_s;
  const double second = nocache.query(cfg_nodes).cost_s;
  EXPECT_GT(second, first * 0.5);  // no meaningful speedup
}

TEST(SnmpCollector, ClearCachesRestoresColdBehaviour) {
  LanTestbed lan(small_lan());
  const auto nodes = lan.host_addrs(8);
  const double cold = lan.collector->query(nodes).cost_s;
  (void)lan.collector->query(nodes);
  lan.collector->clear_caches();
  const double cold_again = lan.collector->query(nodes).cost_s;
  // Bridge database survives (it belongs to the Bridge Collector), so the
  // re-cold query costs less than the very first but far more than warm.
  EXPECT_GT(cold_again, cold * 0.1);
  // Star discovery through the reference node: N-1 cached pairs.
  EXPECT_EQ(lan.collector->path_cache_size(), 7u);
}

TEST(SnmpCollector, MonitoringBeginsAfterDiscovery) {
  LanTestbed lan(small_lan());
  EXPECT_EQ(lan.collector->monitored_interface_count(), 0u);
  (void)lan.collector->query(lan.host_addrs(2));
  EXPECT_GT(lan.collector->monitored_interface_count(), 0u);
}

TEST(SnmpCollector, PeriodicPollObservesTraffic) {
  LanTestbed lan(small_lan());
  const auto a = lan.addr(lan.hosts[0]);
  const auto b = lan.addr(lan.hosts[1]);
  (void)lan.collector->query({a, b});
  // Start a 40 Mb/s flow h0 -> h1 and let two polls elapse.
  lan.flows->start(net::FlowSpec{.src = lan.hosts[0], .dst = lan.hosts[1], .demand_bps = 40e6});
  lan.engine.advance(11.0);
  const auto resp = lan.collector->query({a, b});
  double max_util = 0.0;
  for (const VEdge& e : resp.topology.edges()) {
    max_util = std::max(max_util, std::max(e.util_ab_bps, e.util_ba_bps));
  }
  EXPECT_NEAR(max_util, 40e6, 2e6);
}

TEST(SnmpCollector, UtilizationDirectionIsCorrect) {
  LanTestbed lan(small_lan());
  const auto a = lan.addr(lan.hosts[0]);
  const auto b = lan.addr(lan.hosts[1]);
  (void)lan.collector->query({a, b});
  lan.flows->start(net::FlowSpec{.src = lan.hosts[0], .dst = lan.hosts[1], .demand_bps = 30e6});
  lan.engine.advance(11.0);
  const auto resp = lan.collector->query({a, b});
  // On the edge adjacent to host a, traffic flows away from a.
  const VNodeIndex va = resp.topology.find_by_addr(a);
  for (const VEdge& e : resp.topology.edges()) {
    if (e.a == va) {
      EXPECT_NEAR(e.util_ab_bps, 30e6, 2e6);
      EXPECT_NEAR(e.util_ba_bps, 0.0, 1e5);
    } else if (e.b == va) {
      EXPECT_NEAR(e.util_ba_bps, 30e6, 2e6);
      EXPECT_NEAR(e.util_ab_bps, 0.0, 1e5);
    }
  }
}

TEST(SnmpCollector, HistoryAccumulatesPerEdge) {
  LanTestbed lan(small_lan());
  const auto a = lan.addr(lan.hosts[0]);
  const auto b = lan.addr(lan.hosts[1]);
  const auto resp = lan.collector->query({a, b});
  lan.engine.advance(26.0);  // five polls
  ASSERT_GT(resp.topology.edge_count(), 0u);
  bool found_history = false;
  for (const VEdge& e : resp.topology.edges()) {
    const sim::MeasurementHistory* h = lan.collector->history(e.id);
    if (h != nullptr) {
      found_history = true;
      EXPECT_GE(h->size(), 4u);
    }
  }
  EXPECT_TRUE(found_history);
}

TEST(SnmpCollector, HistoryUnknownResourceNull) {
  LanTestbed lan(small_lan());
  EXPECT_EQ(lan.collector->history("no-such-edge"), nullptr);
}

TEST(SnmpCollector, RoutedPathAcrossSubnets) {
  // Two bridged LANs joined by two routers: collector owns both subnets.
  net::Network net("two-lans");
  sim::Engine engine;
  const auto r1 = net.add_router("r1");
  const auto r2 = net.add_router("r2");
  const auto swa = net.add_switch("swA");
  const auto swb = net.add_switch("swB");
  const auto a = net.add_host("a");
  const auto b = net.add_host("b");
  net.connect(a, swa, 100e6);
  net.connect(swa, r1, 1e9);
  net.connect(r1, r2, 45e6);
  net.connect(r2, swb, 1e9);
  net.connect(b, swb, 100e6);
  net.finalize();
  auto flows = std::make_unique<net::FlowEngine>(engine, net);
  snmp::AgentRegistry agents(net, sim::Rng(3));
  agents.set_before_read([&] { flows->sync(); });

  BridgeCollectorConfig ba;
  ba.switches = {net.node(swa).primary_address()};
  ba.arp = apps::make_arp(net);
  BridgeCollector bridge_a(engine, agents, std::move(ba));
  BridgeCollectorConfig bb;
  bb.switches = {net.node(swb).primary_address()};
  bb.arp = apps::make_arp(net);
  BridgeCollector bridge_b(engine, agents, std::move(bb));

  SnmpCollectorConfig cfg;
  cfg.domain = {*net::Ipv4Prefix::parse("10.0.0.0/8")};
  const auto seg_a = net.segment_of(a, 1);
  const auto seg_b = net.segment_of(b, 1);
  cfg.subnets.push_back({net.segment(seg_a).prefix, net.node(r1).primary_address(), &bridge_a,
                         false, 0.0});
  cfg.subnets.push_back({net.segment(seg_b).prefix, net.node(r2).primary_address(), &bridge_b,
                         false, 0.0});
  // The r1-r2 point-to-point subnet.
  const auto seg_mid = net.segment_of(r1, 2);
  cfg.subnets.push_back({net.segment(seg_mid).prefix, {}, nullptr, false, 0.0});
  SnmpCollector collector(engine, agents, std::move(cfg));

  const auto resp =
      collector.query({net.node(a).primary_address(), net.node(b).primary_address()});
  EXPECT_TRUE(resp.complete);
  const auto va = resp.topology.find_by_addr(net.node(a).primary_address());
  const auto vb = resp.topology.find_by_addr(net.node(b).primary_address());
  const auto path = resp.topology.shortest_path(va, vb);
  ASSERT_TRUE(path.has_value());
  // a-swA-r1-r2-swB-b = 5 edges, and the WAN hop carries 45 Mb/s capacity.
  EXPECT_EQ(path->size(), 5u);
  bool saw_wan = false;
  for (std::size_t ei : *path) {
    if (resp.topology.edges()[ei].capacity_bps == 45e6) saw_wan = true;
  }
  EXPECT_TRUE(saw_wan);
}

TEST(SnmpCollector, InaccessibleRouterBecomesVirtualSwitch) {
  net::Network net("dark");
  sim::Engine engine;
  const auto r1 = net.add_router("r1");
  const auto r2 = net.add_router("r2");
  net.set_snmp(r2, false);  // unmanageable
  const auto a = net.add_host("a");
  const auto b = net.add_host("b");
  net.connect(a, r1, 100e6);
  net.connect(r1, r2, 45e6);
  net.connect(r2, b, 100e6);
  net.finalize();
  snmp::AgentRegistry agents(net, sim::Rng(4));
  SnmpCollectorConfig cfg;
  cfg.domain = {*net::Ipv4Prefix::parse("10.0.0.0/8")};
  cfg.subnets.push_back(
      {net.segment(net.segment_of(a, 1)).prefix, net.node(r1).primary_address(), nullptr, false, 0.0});
  cfg.subnets.push_back(
      {net.segment(net.segment_of(b, 1)).prefix, net.node(r2).primary_address(), nullptr, false, 0.0});
  cfg.subnets.push_back(
      {net.segment(net.segment_of(r1, 2)).prefix, {}, nullptr, false, 0.0});
  SnmpCollector collector(engine, agents, std::move(cfg));
  const auto resp =
      collector.query({net.node(a).primary_address(), net.node(b).primary_address()});
  bool saw_vswitch = false;
  for (const VNode& n : resp.topology.nodes()) {
    if (n.kind == VNodeKind::kVirtualSwitch) saw_vswitch = true;
  }
  EXPECT_TRUE(saw_vswitch);
  // The topology still connects a to b (through the virtual switch).
  const auto path = resp.topology.shortest_path(
      resp.topology.find_by_addr(net.node(a).primary_address()),
      resp.topology.find_by_addr(net.node(b).primary_address()));
  EXPECT_TRUE(path.has_value());
}

TEST(SnmpCollector, SharedEthernetAnnotatedViaVirtualSwitch) {
  net::Network net("sharedlan");
  sim::Engine engine;
  const auto hub = net.add_hub("hub", 10e6);
  const auto a = net.add_host("a");
  const auto b = net.add_host("b");
  net.connect(a, hub, 10e6);
  net.connect(b, hub, 10e6);
  net.finalize();
  snmp::AgentRegistry agents(net, sim::Rng(5));
  SnmpCollectorConfig cfg;
  cfg.domain = {*net::Ipv4Prefix::parse("10.0.0.0/8")};
  cfg.subnets.push_back({net.segment(0).prefix, {}, nullptr, /*shared=*/true, 10e6});
  SnmpCollector collector(engine, agents, std::move(cfg));
  const auto resp =
      collector.query({net.node(a).primary_address(), net.node(b).primary_address()});
  bool saw_annotated_vswitch = false;
  for (const VEdge& e : resp.topology.edges()) {
    const VNode& na = resp.topology.nodes()[e.a];
    const VNode& nb = resp.topology.nodes()[e.b];
    if ((na.kind == VNodeKind::kVirtualSwitch || nb.kind == VNodeKind::kVirtualSwitch) &&
        e.capacity_bps == 10e6) {
      saw_annotated_vswitch = true;
    }
  }
  EXPECT_TRUE(saw_annotated_vswitch);
}

TEST(SnmpCollector, OutOfDomainNodeMarksIncomplete) {
  LanTestbed lan(small_lan());
  auto nodes = lan.host_addrs(2);
  nodes.push_back(*net::Ipv4Address::parse("192.168.77.1"));
  const auto resp = lan.collector->query(nodes);
  EXPECT_FALSE(resp.complete);
  // In-domain part still answered.
  EXPECT_NE(resp.topology.find_by_addr(nodes[0]), kNoVNode);
}

TEST(SnmpCollector, HostMoveInvalidatesPathCache) {
  LanTestbed::Params p = small_lan();
  p.location_check_interval_s = 5.0;
  LanTestbed lan(p);
  const auto nodes = lan.host_addrs(4);
  (void)lan.collector->query(nodes);
  const std::size_t cached = lan.collector->path_cache_size();
  EXPECT_GT(cached, 0u);
  lan.net.move_host(lan.hosts[0], lan.switches[1], 100e6);
  lan.engine.advance(6.0);  // bridge monitor notices
  (void)lan.collector->query(nodes);
  // Cache was flushed and rebuilt; the new topology reflects the move:
  // h0 now reaches h1 (both on sw1) without crossing the trunk.
  const auto resp = lan.collector->query({lan.addr(lan.hosts[0]), lan.addr(lan.hosts[1])});
  const auto path = resp.topology.shortest_path(
      resp.topology.find_by_addr(lan.addr(lan.hosts[0])),
      resp.topology.find_by_addr(lan.addr(lan.hosts[1])));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);
}

TEST(SnmpCollector, ParallelPollingCheaperThanSerial) {
  LanTestbed::Params p;
  p.hosts = 12;
  p.switches = 4;
  LanTestbed lan(p);
  (void)lan.collector->query(lan.host_addrs(12));

  SnmpCollectorConfig serial_cfg = lan.collector->config();
  serial_cfg.parallel_queries = false;
  serial_cfg.name = "serial";
  SnmpCollector serial(lan.engine, *lan.agents, serial_cfg);
  (void)serial.query(lan.host_addrs(12));

  const double par_cost = [&] {
    const double before = lan.collector->snmp_time_consumed_s();
    lan.collector->poll_now();
    return lan.collector->snmp_time_consumed_s() - before;
  }();
  const double ser_cost = [&] {
    const double before = serial.snmp_time_consumed_s();
    serial.poll_now();
    return serial.snmp_time_consumed_s() - before;
  }();
  EXPECT_LT(par_cost, ser_cost);
}

}  // namespace
}  // namespace remos::core
