// Application layer: movie model, adaptive streaming, mirror client,
// testbed invariants.
#include <gtest/gtest.h>

#include "apps/mirror.hpp"
#include "apps/testbed.hpp"
#include "apps/video.hpp"

namespace remos::apps {
namespace {

TEST(Movie, GenerateIsDeterministicAndSized) {
  sim::Rng r1(5), r2(5);
  const Movie a = Movie::generate("m", 10, 1e6, r1);
  const Movie b = Movie::generate("m", 10, 1e6, r2);
  EXPECT_EQ(a.chunks.size(), 10u);
  EXPECT_EQ(a.frame_count(), 240u);  // 24 fps
  ASSERT_EQ(a.frame_count(), b.frame_count());
  for (std::size_t c = 0; c < a.chunks.size(); ++c) {
    EXPECT_EQ(a.chunks[c].total_bytes(), b.chunks[c].total_bytes());
  }
  EXPECT_NEAR(a.mean_rate_bps(), 1e6, 0.35e6);  // content varies around the mean
}

TEST(Movie, GopStructure) {
  sim::Rng rng(6);
  const Movie m = Movie::generate("m", 2, 1e6, rng);
  const VideoChunk& c = m.chunks[0];
  EXPECT_EQ(c.frames[0].type, FrameType::kI);
  std::size_t i_frames = 0;
  for (const VideoFrame& f : c.frames) {
    if (f.type == FrameType::kI) ++i_frames;
  }
  EXPECT_GE(i_frames, 1u);
  // I frames are the big ones.
  EXPECT_GT(c.frames[0].bytes, c.frames[1].bytes);
}

TEST(Streaming, AmpleBandwidthDeliversEverything) {
  net::Network net("v");
  sim::Engine engine;
  const auto server = net.add_host("server");
  const auto client = net.add_host("client");
  const auto r = net.add_router("r");
  net.connect(server, r, 100e6);
  net.connect(r, client, 100e6);
  net.finalize();
  net::FlowEngine flows(engine, net);
  sim::Rng rng(7);
  const Movie movie = Movie::generate("m", 8, 0.5e6, rng);
  VideoServerConfig cfg;
  cfg.initial_estimate_bps = 50e6;
  const StreamResult r1 = stream_movie(engine, flows, server, client, movie, cfg);
  EXPECT_EQ(r1.frames_received_correctly, movie.frame_count());
  EXPECT_EQ(r1.frames_sent, movie.frame_count());
}

TEST(Streaming, TightBandwidthDropsLowPriorityFirst) {
  net::Network net("v");
  sim::Engine engine;
  const auto server = net.add_host("server");
  const auto client = net.add_host("client");
  const auto r = net.add_router("r");
  net.connect(server, r, 0.3e6);  // below the movie's mean rate
  net.connect(r, client, 100e6);
  net.finalize();
  net::FlowEngine flows(engine, net);
  sim::Rng rng(8);
  const Movie movie = Movie::generate("m", 8, 0.6e6, rng);
  VideoServerConfig cfg;
  cfg.initial_estimate_bps = 0.3e6;
  const StreamResult result = stream_movie(engine, flows, server, client, movie, cfg);
  EXPECT_LT(result.frames_sent, movie.frame_count());  // adaptation dropped frames
  EXPECT_GT(result.frames_received_correctly, movie.frame_count() / 4);
  EXPECT_LE(result.frames_received_correctly, result.frames_sent);
}

TEST(Streaming, MoreBandwidthNeverFewerFrames) {
  sim::Rng rng(9);
  const Movie movie = Movie::generate("m", 6, 0.6e6, rng);
  std::size_t prev_frames = 0;
  for (double cap : {0.15e6, 0.4e6, 1.0e6, 5e6}) {
    net::Network net("v");
    sim::Engine engine;
    const auto server = net.add_host("server");
    const auto client = net.add_host("client");
    net.connect(server, client, cap);
    net.finalize();
    net::FlowEngine flows(engine, net);
    VideoServerConfig cfg;
    cfg.initial_estimate_bps = cap;
    const StreamResult result = stream_movie(engine, flows, server, client, movie, cfg);
    EXPECT_GE(result.frames_received_correctly + 4, prev_frames) << cap;  // small slack
    prev_frames = result.frames_received_correctly;
  }
}

TEST(Streaming, GoodputNeverExceedsPathRate) {
  net::Network net("v");
  sim::Engine engine;
  const auto server = net.add_host("server");
  const auto client = net.add_host("client");
  net.connect(server, client, 0.5e6);
  net.finalize();
  net::FlowEngine flows(engine, net);
  sim::Rng rng(10);
  const Movie movie = Movie::generate("m", 6, 0.8e6, rng);
  VideoServerConfig cfg;
  cfg.initial_estimate_bps = 0.5e6;
  const StreamResult result = stream_movie(engine, flows, server, client, movie, cfg);
  for (double goodput : result.chunk_goodput_bps) {
    EXPECT_LE(goodput, 0.5e6 * 1.1);
  }
}

TEST(MirrorClient, TrialRanksAndDownloads) {
  WanTestbed::Params p;
  p.sites = {{"client", 2, 100e6, 20e6},
             {"fast", 2, 100e6, 8e6},
             {"slow", 2, 100e6, 1e6}};
  p.cross_traffic_load = 0.0;
  WanTestbed wan(p);
  wan.warm_up(60.0);
  MirrorClient client(wan.engine, *wan.flows, *wan.modeler, wan.host("client", 1),
                      wan.addr(wan.host("client", 1)),
                      {{"fast", wan.host("fast", 1), wan.addr(wan.host("fast", 1))},
                       {"slow", wan.host("slow", 1), wan.addr(wan.host("slow", 1))}});
  const MirrorTrialResult r = client.run_trial();
  EXPECT_EQ(r.remos_ranking.front(), 0u);  // "fast" ranked first
  EXPECT_TRUE(r.remos_correct);
  EXPECT_NEAR(r.achieved_bps[0], 8e6, 1e6);
  // Benchmark probes legitimately share the 1 Mb/s access link during the
  // download, so the achieved rate sits somewhat below capacity.
  EXPECT_NEAR(r.achieved_bps[1], 1e6, 4.5e5);
  EXPECT_GT(r.effective_bps, 0.0);
  EXPECT_LE(r.effective_bps, r.achieved_bps[0]);  // query time only subtracts
  EXPECT_GT(r.remos_query_time_s, 0.0);
}

TEST(LanTestbed, CustomPrefixRespected) {
  LanTestbed::Params p;
  p.hosts = 2;
  p.switches = 1;
  p.site_prefix = "172.16.0.0/12";
  LanTestbed lan(p);
  const auto prefix = *net::Ipv4Prefix::parse("172.16.0.0/12");
  for (const auto addr : lan.host_addrs(2)) EXPECT_TRUE(prefix.contains(addr));
}

TEST(WanTestbed, RequiresTwoSites) {
  WanTestbed::Params p;
  p.sites = {{"only", 2, 100e6, 1e6}};
  EXPECT_THROW(WanTestbed w(p), std::invalid_argument);
}

TEST(WanTestbed, SiteLookup) {
  WanTestbed::Params p;
  p.sites = {{"x", 2, 100e6, 1e6}, {"y", 2, 100e6, 1e6}};
  WanTestbed wan(p);
  EXPECT_EQ(wan.site("x").name, "x");
  EXPECT_THROW((void)wan.site("z"), std::out_of_range);
  EXPECT_EQ(wan.host("y", 1), wan.site("y").hosts[1]);
}

TEST(WanTestbed, CrossTrafficLoadsAccessLink) {
  WanTestbed::Params p;
  p.sites = {{"x", 2, 100e6, 2e6}, {"y", 2, 100e6, 2e6}};
  p.cross_traffic_load = 0.5;
  p.cross_period_s = 2.0;
  WanTestbed wan(p);
  wan.warm_up(300.0);
  // Average x->core utilization should be near 50% of 2 Mb/s. Measure via
  // a long transfer's achieved rate: it gets what cross traffic leaves.
  const auto f = wan.flows->start(
      net::FlowSpec{.src = wan.host("x", 1), .dst = wan.host("y", 1)});
  wan.engine.advance(300.0);
  wan.flows->stop(f);
  const auto stats = wan.flows->stats(f);
  ASSERT_TRUE(stats.has_value());
  EXPECT_LT(stats->average_bps(), 1.9e6);  // noticeably below capacity
  EXPECT_GT(stats->average_bps(), 0.9e6);  // but never starved (max-min)
}

}  // namespace
}  // namespace remos::apps
