// Threaded hammering of the shared surfaces — the tests the `tsan` preset
// exists for (cmake --preset tsan): SharedPredictionCache under concurrent
// readers/writers, parallel_for exception aggregation, and concurrent
// read-only MIB walks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "apps/testbed.hpp"
#include "net/flows.hpp"
#include "rps/shared_cache.hpp"
#include "sim/thread_pool.hpp"
#include "snmp/mib.hpp"

namespace remos {
namespace {

rps::Prediction make_prediction(double v) {
  rps::Prediction p;
  p.mean = {v};
  p.variance = {0.0};
  return p;
}

TEST(SharedCacheConcurrency, ParallelGetOrComputeSingleFit) {
  std::atomic<double> now{0.0};
  rps::SharedPredictionCache cache(60.0, [&] { return now.load(); });
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        const auto p = cache.get_or_compute("hot-key", [&] {
          computes.fetch_add(1);
          return make_prediction(42.0);
        });
        EXPECT_DOUBLE_EQ(p.mean[0], 42.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  // compute() runs under the cache lock: exactly one fit for a hot key.
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 8u * 200u - 1u);
}

TEST(SharedCacheConcurrency, MixedReadersWritersInvalidators) {
  std::atomic<double> now{0.0};
  rps::SharedPredictionCache cache(0.5, [&] { return now.load(); });
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      const std::string key = "edge-" + std::to_string(t);
      while (!stop.load()) {
        (void)cache.get_or_compute(key, [&] { return make_prediction(t); });
        if (auto p = cache.peek(key)) EXPECT_DOUBLE_EQ(p->mean[0], t);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 500; ++i) {
      now.store(now.load() + 0.01);
      cache.invalidate("edge-" + std::to_string(i % 3));
      if (i % 100 == 99) cache.clear();
      (void)cache.size();
      (void)cache.hit_rate();
    }
    stop.store(true);
  });
  for (auto& t : threads) t.join();
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

TEST(ThreadPoolConcurrency, ParallelForAggregatesExceptions) {
  sim::ThreadPool pool(4);
  // Every lane throws: the first exception propagates, the remaining
  // lane failures are counted instead of vanishing.
  EXPECT_THROW(pool.parallel_for(4,
                                 [](std::size_t) -> void {
                                   throw std::runtime_error("every lane fails");
                                 }),
               std::runtime_error);
  // 4 lanes on 4 workers, each claims >=1 failing index: the ones beyond
  // the rethrown first are suppressed-but-counted.
  EXPECT_LE(pool.last_suppressed(), 3u);
  // A clean run resets the counter.
  pool.parallel_for(64, [](std::size_t) {});
  EXPECT_EQ(pool.last_suppressed(), 0u);
}

TEST(ThreadPoolConcurrency, ParallelForSingleFailureAmongMany) {
  sim::ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(pool.parallel_for(200,
                                 [&](std::size_t i) {
                                   ran.fetch_add(1);
                                   if (i == 97) throw std::logic_error("bad index");
                                 }),
               std::logic_error);
  EXPECT_EQ(pool.last_suppressed(), 0u);  // only one lane failed
  EXPECT_GT(ran.load(), 0u);
}

TEST(ThreadPoolConcurrency, ShutdownWakesAllWorkers) {
  // Construct and immediately destroy pools with idle workers: the
  // destructor's notify_all must wake every blocked worker (a lost wakeup
  // deadlocks this test; TSan additionally checks the handshake).
  for (int round = 0; round < 20; ++round) {
    sim::ThreadPool pool(8);
    if (round % 2 == 0) (void)pool.submit([] { return 1; }).get();
  }
}

TEST(MibConcurrency, ConcurrentReadOnlyWalks) {
  apps::LanTestbed lan;
  lan.engine.run_until(10.0);
  // Build one view per managed device, then walk them all from many
  // threads at once. Walks are read-only; value closures read live network
  // counters, which is safe while the simulation itself is quiescent.
  std::vector<snmp::MibView> views;
  for (const net::Node& n : lan.net.nodes()) {
    if (n.snmp_enabled) views.push_back(snmp::build_device_mib(lan.net, n.id));
  }
  ASSERT_FALSE(views.empty());
  std::vector<std::thread> threads;
  threads.reserve(6);
  std::atomic<std::size_t> visited{0};
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (const auto& view : views) {
        snmp::Oid cursor;
        std::size_t steps = 0;
        while (auto vb = view.get_next(cursor)) {
          cursor = vb->oid;
          if (++steps > view.object_count()) break;  // ordering bug guard
        }
        EXPECT_EQ(steps, view.object_count());
        visited.fetch_add(steps);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(visited.load(), 0u);
}

/// Dumbbell with per-host access links; flows between disjoint host pairs
/// are bottleneck-independent, so the partitioned solver splits them.
struct ConcurrencyNet {
  net::Network lan{"conc"};
  sim::Engine engine;
  std::vector<net::NodeId> left, right;
  std::unique_ptr<net::FlowEngine> flows;

  explicit ConcurrencyNet(std::size_t pairs) {
    const net::NodeId sw = lan.add_switch("sw");
    for (std::size_t i = 0; i < pairs; ++i) {
      left.push_back(lan.add_host("l" + std::to_string(i)));
      right.push_back(lan.add_host("r" + std::to_string(i)));
      lan.connect(left.back(), sw, 100e6);
      lan.connect(right.back(), sw, 100e6);
    }
    lan.finalize();
    flows = std::make_unique<net::FlowEngine>(engine, lan);
  }
};

TEST(FlowEngineConcurrency, ConstQueriesRaceMutators) {
  // The regression the tsan preset pins: resolved_path historically
  // mutated the `mutable` path cache from const queries with no
  // synchronization, so RTT probes racing start()/stop() corrupted the
  // cache. Readers hammer every const query while the simulation thread
  // starts, advances, syncs, and stops flows.
  ConcurrencyNet c(4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      const std::size_t i = static_cast<std::size_t>(t) % c.left.size();
      while (!stop.load()) {
        (void)c.flows->current_rtt(c.left[i], c.right[i]);
        (void)c.flows->rate(static_cast<net::FlowId>(t + 1));
        (void)c.flows->stats(static_cast<net::FlowId>(t + 1));
        (void)c.flows->directed_link_rate(static_cast<net::LinkId>(i), true);
        (void)c.flows->active_count();
        (void)c.flows->path_cache_hits();
        (void)c.flows->waterfill_rounds_total();
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    std::vector<net::FlowId> ids;
    for (std::size_t i = 0; i < c.left.size(); ++i) {
      net::FlowSpec spec{.src = c.left[i], .dst = c.right[i]};
      if (i % 2 == 0) spec.bytes = 25'000;  // completes after 2 ms at 100 Mb/s
      ids.push_back(c.flows->start(std::move(spec)));
    }
    c.engine.advance(0.005);
    c.flows->sync();
    for (const net::FlowId id : ids) c.flows->stop(id);
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(c.flows->active_count(), 0u);
}

TEST(FlowEngineConcurrency, ParallelRecomputeMatchesSequential) {
  // set_thread_pool routes large recomputes through the partitioned
  // parallel kernel; every per-flow rate must stay bit-identical to the
  // sequential engine fed the same start sequence.
  ConcurrencyNet seq(16);
  ConcurrencyNet par(16);
  sim::ThreadPool pool(4);
  par.flows->set_thread_pool(&pool, /*min_flows=*/2);
  std::vector<net::FlowId> seq_ids, par_ids;
  for (std::size_t i = 0; i < seq.left.size(); ++i) {
    seq_ids.push_back(seq.flows->start(net::FlowSpec{.src = seq.left[i], .dst = seq.right[i]}));
    par_ids.push_back(par.flows->start(net::FlowSpec{.src = par.left[i], .dst = par.right[i]}));
  }
  for (std::size_t i = 0; i < seq_ids.size(); ++i) {
    const double a = seq.flows->rate(seq_ids[i]);
    const double b = par.flows->rate(par_ids[i]);
    EXPECT_EQ(0, std::memcmp(&a, &b, sizeof a)) << "flow " << i;
    EXPECT_DOUBLE_EQ(a, 100e6);
  }
}

}  // namespace
}  // namespace remos
