// Evaluator feedback and the two prediction operating modes.
#include <gtest/gtest.h>

#include "rps/evaluator.hpp"
#include "rps/predictor.hpp"
#include "sim/rng.hpp"

namespace remos::rps {
namespace {

std::vector<double> ar1_series(double phi, std::size_t n, std::uint64_t seed, double mu = 0.0) {
  sim::Rng rng(seed);
  std::vector<double> xs;
  double x = 0.0;
  for (std::size_t t = 0; t < n + 100; ++t) {
    x = phi * x + rng.normal();
    if (t >= 100) xs.push_back(mu + x);
  }
  return xs;
}

TEST(Evaluator, TracksOneStepErrors) {
  Evaluator e;
  e.note_prediction(5.0);
  e.observe(7.0);
  e.note_prediction(3.0);
  e.observe(3.0);
  EXPECT_EQ(e.sample_count(), 2u);
  EXPECT_DOUBLE_EQ(e.observed_mse(), 2.0);  // (4 + 0) / 2
  EXPECT_DOUBLE_EQ(e.observed_bias(), 1.0);
}

TEST(Evaluator, ObserveWithoutPredictionIgnored) {
  Evaluator e;
  e.observe(1.0);
  EXPECT_EQ(e.sample_count(), 0u);
}

TEST(Evaluator, WindowBounded) {
  Evaluator e(EvaluatorConfig{4, 2.0, 1});
  for (int i = 0; i < 20; ++i) {
    e.note_prediction(0.0);
    e.observe(static_cast<double>(i));
  }
  EXPECT_EQ(e.sample_count(), 4u);
}

TEST(Evaluator, RefitTriggersWhenErrorExceedsClaim) {
  Evaluator e(EvaluatorConfig{16, 2.0, 4});
  for (int i = 0; i < 8; ++i) {
    e.note_prediction(0.0);
    e.observe(10.0);  // MSE = 100
  }
  EXPECT_TRUE(e.needs_refit(/*claimed=*/1.0));
  EXPECT_FALSE(e.needs_refit(/*claimed=*/100.0));
}

TEST(Evaluator, NoVerdictBeforeMinSamples) {
  Evaluator e(EvaluatorConfig{16, 2.0, 8});
  for (int i = 0; i < 4; ++i) {
    e.note_prediction(0.0);
    e.observe(100.0);
  }
  EXPECT_FALSE(e.needs_refit(1.0));
}

TEST(Evaluator, CalibrationRatioNearOneForGoodModel) {
  Evaluator e(EvaluatorConfig{256, 2.0, 8});
  sim::Rng rng(1);
  for (int i = 0; i < 256; ++i) {
    e.note_prediction(0.0);
    e.observe(rng.normal(0.0, 2.0));  // true variance 4
  }
  EXPECT_NEAR(e.calibration_ratio(4.0), 1.0, 0.3);
}

TEST(StreamingPredictor, PushBeforePrimeThrows) {
  StreamingPredictor p(ModelSpec::ar(4));
  EXPECT_THROW(p.push(1.0), std::logic_error);
  EXPECT_THROW(p.predict(), std::logic_error);
}

TEST(StreamingPredictor, ProducesHorizonPredictions) {
  StreamingConfig cfg;
  cfg.horizon = 12;
  StreamingPredictor p(ModelSpec::ar(4), cfg);
  p.prime(ar1_series(0.8, 800, 2));
  const Prediction pred = p.push(1.0);
  EXPECT_EQ(pred.mean.size(), 12u);
  EXPECT_EQ(pred.variance.size(), 12u);
  EXPECT_EQ(p.steps(), 1u);
}

TEST(StreamingPredictor, AmortizesFitAcrossSteps) {
  StreamingPredictor p(ModelSpec::ar(8));
  p.prime(ar1_series(0.8, 800, 3));
  const auto xs = ar1_series(0.8, 500, 4);
  for (double x : xs) p.push(x);
  // A well-matched model should almost never trigger an error refit.
  EXPECT_LE(p.refit_count(), 3u);
}

TEST(StreamingPredictor, RefitsWhenRegimeChanges) {
  StreamingConfig cfg;
  cfg.evaluator.min_samples = 8;
  cfg.evaluator.tolerance = 2.0;
  StreamingPredictor p(ModelSpec::ar(2), cfg);
  p.prime(ar1_series(0.8, 800, 5, /*mu=*/0.0));
  const std::size_t before = p.refit_count();
  // Signal jumps to a wildly different regime.
  sim::Rng rng(6);
  for (int i = 0; i < 100; ++i) p.push(100.0 + rng.normal(0.0, 5.0));
  EXPECT_GT(p.refit_count(), before);
  // And after refitting, predictions live in the new regime.
  EXPECT_GT(p.predict().mean[0], 50.0);
}

TEST(StreamingPredictor, RefitDisabledStaysPut) {
  StreamingConfig cfg;
  cfg.refit_on_error = false;
  StreamingPredictor p(ModelSpec::mean(), cfg);
  p.prime(std::vector<double>(100, 1.0));
  for (int i = 0; i < 50; ++i) p.push(100.0);
  EXPECT_EQ(p.refit_count(), 1u);  // only the prime
}

// The complexity-regression pin for the old vector fit buffer: push()
// erased the buffer front every post-prime sample, moving window-1
// elements per push. The ring-backed window must move elements only on
// prime (and full-refit linearization), never per push.
TEST(StreamingPredictor, PushMovesNoBufferElements) {
  StreamingConfig cfg;
  cfg.fit_window = 128;
  cfg.refit_on_error = false;  // no full-refit linearizations mid-stream
  StreamingPredictor p(ModelSpec::ar(4), cfg);
  p.prime(ar1_series(0.8, 400, 21));
  const std::uint64_t after_prime = p.fit_buffer_moves();
  EXPECT_EQ(after_prime, 128u);  // the tail the prime retained
  const auto xs = ar1_series(0.8, 1000, 22);
  for (double x : xs) p.push(x);
  // Old buffer: + 1000 * 127 moves. Ring: zero.
  EXPECT_EQ(p.fit_buffer_moves(), after_prime);
}

TEST(StreamingPredictor, IncrementalMatchesFullRefitPath) {
  // Same spec, same data, evaluator-forced refits: the incremental-install
  // path must track the full-recompute path within the documented 1e-9
  // contract (compounded through the forecast recursion; 1e-8 headroom).
  const auto prime = ar1_series(0.7, 300, 23, /*mu=*/50.0);
  const auto stream = ar1_series(0.7, 400, 24, /*mu=*/50.0);
  StreamingConfig cfg;
  cfg.fit_window = 200;
  cfg.horizon = 10;
  cfg.evaluator.min_samples = 4;
  cfg.evaluator.tolerance = 0.0;  // refit on every evaluator verdict
  StreamingConfig full = cfg;
  full.incremental_fit = false;
  StreamingPredictor inc(ModelSpec::ar(8), cfg);
  StreamingPredictor ref(ModelSpec::ar(8), full);
  inc.prime(prime);
  ref.prime(prime);
  for (double x : stream) {
    const Prediction a = inc.push(x);
    const Prediction b = ref.push(x);
    ASSERT_EQ(a.mean.size(), b.mean.size());
    for (std::size_t h = 0; h < a.mean.size(); ++h) {
      const double scale = std::max({1.0, std::abs(a.mean[h]), std::abs(b.mean[h])});
      ASSERT_LE(std::abs(a.mean[h] - b.mean[h]), 1e-8 * scale) << "h=" << h;
    }
  }
  EXPECT_EQ(inc.refit_count(), ref.refit_count());
  EXPECT_GT(inc.incremental_refit_count(), 0u);
  EXPECT_EQ(ref.incremental_refit_count(), 0u);
}

TEST(StreamingPredictor, IncrementalResyncsOnWindowTurnover) {
  StreamingConfig cfg;
  cfg.fit_window = 64;
  cfg.refit_on_error = false;
  StreamingPredictor p(ModelSpec::ar(4), cfg);
  p.prime(ar1_series(0.5, 64, 25));
  const auto xs = ar1_series(0.5, 64 * 3, 26);
  for (double x : xs) p.push(x);
  EXPECT_EQ(p.resync_count(), 3u);
}

TEST(StreamingPredictor, NonArFamiliesIgnoreIncrementalFlag) {
  // The incremental lane only covers pure AR Yule-Walker; a MEAN-family
  // predictor must behave identically with the flag on or off.
  for (const bool flag : {false, true}) {
    StreamingConfig cfg;
    cfg.incremental_fit = flag;
    StreamingPredictor p(ModelSpec::mean(), cfg);
    p.prime(std::vector<double>(100, 3.0));
    for (int i = 0; i < 20; ++i) p.push(3.0);
    EXPECT_EQ(p.incremental_refit_count(), 0u);
    EXPECT_DOUBLE_EQ(p.predict().mean[0], 3.0);
  }
}

TEST(ClientServerPredictor, StatelessFitPerRequest) {
  ClientServerPredictor service(ModelSpec::ar(4));
  const auto xs = ar1_series(0.8, 600, 7, /*mu=*/20.0);
  ClientServerPredictor::Request req;
  req.history = xs;
  req.horizon = 5;
  const Prediction p1 = service.predict(req);
  const Prediction p2 = service.predict(req);
  EXPECT_EQ(p1.mean, p2.mean);  // no state carries over
  EXPECT_EQ(service.requests_served(), 2u);
  EXPECT_NEAR(p1.mean[4], 20.0, 3.0);
}

TEST(ClientServerPredictor, PerRequestModelOverride) {
  ClientServerPredictor service(ModelSpec::ar(4));
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  ClientServerPredictor::Request req;
  req.history = xs;
  req.horizon = 1;
  req.spec = ModelSpec::last();
  EXPECT_DOUBLE_EQ(service.predict(req).mean[0], 10.0);
  req.spec = ModelSpec::mean();
  EXPECT_DOUBLE_EQ(service.predict(req).mean[0], 5.5);
}

TEST(ClientServerPredictor, PropagatesFitErrors) {
  ClientServerPredictor service(ModelSpec::ar(16));
  const std::vector<double> tiny{1.0, 2.0};
  ClientServerPredictor::Request req;
  req.history = tiny;
  req.horizon = 1;
  EXPECT_THROW(service.predict(req), std::invalid_argument);
}

TEST(Modes, StreamingMatchesClientServerAfterSameData) {
  // With the same model family and effective window, a streaming predictor
  // that refits every step equals client-server predictions.
  const auto xs = ar1_series(0.7, 400, 8);
  ClientServerPredictor service(ModelSpec::mean());
  ClientServerPredictor::Request req;
  req.history = xs;
  req.horizon = 1;
  const double cs = service.predict(req).mean[0];

  StreamingConfig cfg;
  cfg.fit_window = xs.size();
  StreamingPredictor streaming(ModelSpec::mean(), cfg);
  streaming.prime(std::vector<double>(xs.begin(), xs.begin() + 1));
  for (std::size_t i = 1; i < xs.size(); ++i) streaming.push(xs[i]);
  EXPECT_NEAR(streaming.predict().mean[0], cs, 1e-9);
}

}  // namespace
}  // namespace remos::rps
