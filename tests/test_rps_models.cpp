// Model zoo: spec parsing, fit/step/predict behaviour per family,
// refitting wrapper, forecast error characterization.
#include <gtest/gtest.h>

#include <cmath>

#include "rps/models.hpp"
#include "rps/series.hpp"
#include "sim/rng.hpp"

namespace remos::rps {
namespace {

std::vector<double> ar1_series(double phi, std::size_t n, std::uint64_t seed, double mu = 0.0) {
  sim::Rng rng(seed);
  std::vector<double> xs;
  double x = 0.0;
  for (std::size_t t = 0; t < n + 100; ++t) {
    x = phi * x + rng.normal();
    if (t >= 100) xs.push_back(mu + x);
  }
  return xs;
}

TEST(ModelSpec, ParseAllFamilies) {
  EXPECT_EQ(ModelSpec::parse("MEAN")->family, ModelSpec::Family::kMean);
  EXPECT_EQ(ModelSpec::parse("LAST")->family, ModelSpec::Family::kLast);
  auto bm = ModelSpec::parse("BM32");
  ASSERT_TRUE(bm);
  EXPECT_EQ(bm->window, 32u);
  auto ar = ModelSpec::parse("AR16");
  ASSERT_TRUE(ar);
  EXPECT_EQ(ar->p, 16u);
  EXPECT_FALSE(ar->use_burg);
  auto arburg = ModelSpec::parse("ARBURG8");
  ASSERT_TRUE(arburg);
  EXPECT_TRUE(arburg->use_burg);
  auto ma = ModelSpec::parse("MA8");
  ASSERT_TRUE(ma);
  EXPECT_EQ(ma->q, 8u);
  auto arma = ModelSpec::parse("ARMA(8,8)");
  ASSERT_TRUE(arma);
  EXPECT_EQ(arma->p, 8u);
  EXPECT_EQ(arma->q, 8u);
  auto arima = ModelSpec::parse("ARIMA(2,1,2)");
  ASSERT_TRUE(arima);
  EXPECT_EQ(arima->d, 1);
  auto farima = ModelSpec::parse("FARIMA(1,0.4,1)");
  ASSERT_TRUE(farima);
  EXPECT_NEAR(farima->frac_d, 0.4, 1e-12);
}

TEST(ModelSpec, ParseRejectsJunk) {
  EXPECT_FALSE(ModelSpec::parse(""));
  EXPECT_FALSE(ModelSpec::parse("XYZ"));
  EXPECT_FALSE(ModelSpec::parse("AR"));
  EXPECT_FALSE(ModelSpec::parse("ARMA(1)"));
  EXPECT_FALSE(ModelSpec::parse("BM"));
}

TEST(ModelSpec, RoundTripToString) {
  for (const char* text : {"MEAN", "LAST", "BM32", "AR16", "MA8", "ARMA(8,8)", "ARIMA(2,1,2)"}) {
    auto spec = ModelSpec::parse(text);
    ASSERT_TRUE(spec) << text;
    EXPECT_EQ(spec->to_string(), text);
  }
}

TEST(MeanModel, PredictsLongTermAverage) {
  auto m = make_model(ModelSpec::mean());
  m->fit(std::vector<double>{2, 4, 6});
  const auto p = m->predict(3);
  for (double v : p.mean) EXPECT_DOUBLE_EQ(v, 4.0);
  m->step(8.0);  // running mean: (2+4+6+8)/4
  EXPECT_DOUBLE_EQ(m->predict(1).mean[0], 5.0);
}

TEST(LastModel, PredictsLastValue) {
  auto m = make_model(ModelSpec::last());
  m->fit(std::vector<double>{1, 2, 3});
  EXPECT_DOUBLE_EQ(m->predict(2).mean[1], 3.0);
  m->step(9.0);
  EXPECT_DOUBLE_EQ(m->predict(1).mean[0], 9.0);
}

TEST(LastModel, ErrorGrowsLikeRandomWalk) {
  auto m = make_model(ModelSpec::last());
  sim::Rng rng(1);
  std::vector<double> xs{0.0};
  for (int i = 0; i < 500; ++i) xs.push_back(xs.back() + rng.normal());
  m->fit(xs);
  const auto p = m->predict(10);
  EXPECT_NEAR(p.variance[9] / p.variance[0], 10.0, 1e-9);
}

TEST(WindowModel, AveragesLastW) {
  auto m = make_model(ModelSpec::window_avg(3));
  m->fit(std::vector<double>{10, 10, 1, 2, 3});
  EXPECT_DOUBLE_EQ(m->predict(1).mean[0], 2.0);
  m->step(7.0);  // window now {2,3,7}
  EXPECT_DOUBLE_EQ(m->predict(1).mean[0], 4.0);
}

TEST(ArModel, BeatsMeanOnAr1Signal) {
  const auto xs = ar1_series(0.9, 4000, 2);
  const std::vector<double> train(xs.begin(), xs.begin() + 3000);
  auto ar = make_model(ModelSpec::ar(4));
  auto mean_model = make_model(ModelSpec::mean());
  ar->fit(train);
  mean_model->fit(train);
  double ar_sse = 0.0, mean_sse = 0.0;
  for (std::size_t t = 3000; t < xs.size(); ++t) {
    const double pa = ar->predict(1).mean[0];
    const double pm = mean_model->predict(1).mean[0];
    ar_sse += (xs[t] - pa) * (xs[t] - pa);
    mean_sse += (xs[t] - pm) * (xs[t] - pm);
    ar->step(xs[t]);
    mean_model->step(xs[t]);
  }
  // AR(16) cuts error variance vs the raw signal dramatically (the paper
  // quotes 70% lower for host load); phi=0.9 gives ~1/(1-.81) ≈ 5x.
  EXPECT_LT(ar_sse, 0.4 * mean_sse);
}

TEST(ArModel, ForecastDecaysTowardMean) {
  const auto xs = ar1_series(0.8, 5000, 3, /*mu=*/10.0);
  auto m = make_model(ModelSpec::ar(1));
  m->fit(xs);
  m->step(14.0);  // well above mean
  const auto p = m->predict(30);
  EXPECT_GT(p.mean[0], p.mean[29]);        // decays
  EXPECT_NEAR(p.mean[29], 10.0, 1.0);      // toward the mean
  for (std::size_t h = 1; h < 30; ++h) EXPECT_GE(p.variance[h], p.variance[h - 1]);
}

TEST(ArModel, VarianceCharacterizationIsCalibrated) {
  const auto xs = ar1_series(0.85, 20000, 4);
  auto m = make_model(ModelSpec::ar(2));
  const std::vector<double> train(xs.begin(), xs.begin() + 10000);
  m->fit(train);
  double sse = 0.0;
  std::size_t n = 0;
  for (std::size_t t = 10000; t < xs.size(); ++t) {
    const double pred = m->predict(1).mean[0];
    sse += (xs[t] - pred) * (xs[t] - pred);
    ++n;
    m->step(xs[t]);
  }
  const double claimed = m->predict(1).variance[0];
  const double observed = sse / static_cast<double>(n);
  EXPECT_NEAR(observed / claimed, 1.0, 0.1);  // "usually quite accurate"
}

TEST(MaModel, FitsAndPredicts) {
  sim::Rng rng(5);
  std::vector<double> eps{0.0};
  std::vector<double> xs;
  for (int t = 0; t < 20000; ++t) {
    const double e = rng.normal();
    xs.push_back(5.0 + e + 0.5 * eps.back());
    eps.push_back(e);
  }
  auto m = make_model(ModelSpec::ma(1));
  m->fit(xs);
  const auto p = m->predict(3);
  // Beyond lag q the forecast reverts to the mean.
  EXPECT_NEAR(p.mean[1], 5.0, 0.15);
  EXPECT_NEAR(p.mean[2], 5.0, 0.15);
}

TEST(ArmaModel, TracksAr1Signal) {
  const auto xs = ar1_series(0.8, 30000, 6);
  auto m = make_model(ModelSpec::arma(1, 1));
  m->fit(xs);
  EXPECT_TRUE(m->fitted());
  m->step(3.0);
  const auto p = m->predict(5);
  EXPECT_GT(p.mean[0], 0.5);  // strong positive dependence carries over
}

TEST(ArimaModel, TracksLinearTrend) {
  // Deterministic ramp + small noise: ARIMA(0,1,0) == drift model.
  sim::Rng rng(7);
  std::vector<double> xs;
  for (int t = 0; t < 500; ++t) xs.push_back(2.0 * t + rng.normal(0.0, 0.1));
  auto m = make_model(ModelSpec::arima(0, 1, 0));
  m->fit(xs);
  const auto p = m->predict(5);
  // Next values continue the ramp.
  EXPECT_NEAR(p.mean[0], 2.0 * 500, 2.0);
  EXPECT_NEAR(p.mean[4], 2.0 * 504, 3.0);
  // Integrated variance grows superlinearly.
  EXPECT_GT(p.variance[4], 3.0 * p.variance[0]);
}

TEST(ArimaModel, StepUpdatesTails) {
  sim::Rng rng(8);
  std::vector<double> xs;
  for (int t = 0; t < 300; ++t) xs.push_back(3.0 * t + rng.normal(0.0, 0.1));
  auto m = make_model(ModelSpec::arima(0, 1, 0));
  m->fit(xs);
  m->step(3.0 * 300);
  m->step(3.0 * 301);
  EXPECT_NEAR(m->predict(1).mean[0], 3.0 * 302, 2.0);
}

TEST(FarimaModel, FitsLongMemorySignal) {
  // Fractionally integrated noise, d=0.4.
  sim::Rng rng(9);
  const std::size_t n = 4000;
  const auto psi = fractional_diff_coeffs(-0.4, 200);
  std::vector<double> eps(n + 200);
  for (double& e : eps) e = rng.normal();
  std::vector<double> xs(n);
  for (std::size_t t = 0; t < n; ++t) {
    double v = 0.0;
    for (std::size_t k = 0; k < 200; ++k) v += psi[k] * eps[t + 200 - k];
    xs[t] = v;
  }
  auto m = make_model(ModelSpec::farima(1, 0.4, 0));
  m->fit(xs);
  EXPECT_TRUE(m->fitted());
  // One-step forecasts should beat the MEAN model on long-memory data.
  auto mm = make_model(ModelSpec::mean());
  mm->fit(xs);
  double f_sse = 0.0, m_sse = 0.0;
  sim::Rng rng2(10);
  for (int i = 0; i < 200; ++i) {
    const double truth = xs[n - 200 + static_cast<std::size_t>(i)];
    f_sse += std::pow(truth - m->predict(1).mean[0], 2);
    m_sse += std::pow(truth - mm->predict(1).mean[0], 2);
    m->step(truth);
    mm->step(truth);
  }
  EXPECT_LT(f_sse, m_sse);
}

TEST(AllModels, PredictBeforeFitThrows) {
  for (const char* text : {"MEAN", "LAST", "BM8", "AR4", "MA2", "ARMA(2,2)", "ARIMA(1,1,1)"}) {
    auto m = make_model(*ModelSpec::parse(text));
    EXPECT_THROW(m->predict(1), std::logic_error) << text;
    EXPECT_THROW(m->step(1.0), std::logic_error) << text;
  }
}

TEST(AllModels, CloneIsIndependent) {
  const auto xs = ar1_series(0.7, 2000, 11);
  auto m = make_model(ModelSpec::ar(2));
  m->fit(xs);
  auto c = m->clone();
  m->step(100.0);
  // Clone did not see the step.
  EXPECT_NE(m->predict(1).mean[0], c->predict(1).mean[0]);
}

TEST(AllModels, NamesAreStable) {
  EXPECT_EQ(make_model(ModelSpec::ar(16))->name(), "AR16");
  EXPECT_EQ(make_model(ModelSpec::arma(8, 8))->name(), "ARMA(8,8)");
  EXPECT_EQ(make_model(ModelSpec::mean())->name(), "MEAN");
}

TEST(RefittingModel, RefitsOnSchedule) {
  const auto xs = ar1_series(0.7, 1000, 12);
  RefittingModel m(ModelSpec::ar(2), /*refit_interval=*/50, /*fit_window=*/200);
  m.fit(xs);
  EXPECT_EQ(m.refit_count(), 1u);
  for (int i = 0; i < 120; ++i) m.step(xs[static_cast<std::size_t>(i)]);
  EXPECT_EQ(m.refit_count(), 3u);  // after steps 50 and 100
}

TEST(RefittingModel, AdaptsToRegimeChange) {
  // Signal mean jumps from 0 to 50; the refitting MEAN model follows while
  // a plain MEAN model lags.
  std::vector<double> xs(300, 0.0);
  RefittingModel refit(ModelSpec::mean(), 20, 50);
  auto plain = make_model(ModelSpec::mean());
  refit.fit(xs);
  plain->fit(xs);
  for (int i = 0; i < 200; ++i) {
    refit.step(50.0);
    plain->step(50.0);
  }
  EXPECT_NEAR(refit.predict(1).mean[0], 50.0, 1.0);
  EXPECT_LT(plain->predict(1).mean[0], 30.0);
}

TEST(RefittingModel, InitialFitTooShortThrows) {
  // The initial fit window is shorter than the AR order needs: the caller
  // must hear about it (later *refits* on short buffers are deferred
  // silently, which RefitsOnSchedule exercises).
  const auto xs = ar1_series(0.5, 1000, 13);
  RefittingModel m(ModelSpec::ar(16), 5, 10);
  EXPECT_THROW(m.fit(xs), std::invalid_argument);
}

TEST(Parameterized_ArOrderSweep, HigherOrderNeverMuchWorse) {
  const auto xs = ar1_series(0.85, 6000, 14);
  const std::vector<double> train(xs.begin(), xs.begin() + 5000);
  double prev_mse = 1e18;
  for (std::size_t p : {1u, 2u, 4u, 8u, 16u}) {
    auto m = make_model(ModelSpec::ar(p));
    m->fit(train);
    double sse = 0.0;
    for (std::size_t t = 5000; t < xs.size(); ++t) {
      const double pred = m->predict(1).mean[0];
      sse += (xs[t] - pred) * (xs[t] - pred);
      m->step(xs[t]);
    }
    EXPECT_LT(sse, prev_mse * 1.15) << "order " << p;
    prev_mse = sse;
  }
}

}  // namespace
}  // namespace remos::rps
