// Wire protocols: ASCII, XML, HTTP framing, XML mini-DOM, remote stubs.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "core/protocol.hpp"
#include "core/remote.hpp"
#include "core/xml.hpp"

namespace remos::core {
namespace {

net::Ipv4Address ip(const char* text) { return *net::Ipv4Address::parse(text); }

CollectorResponse sample_response() {
  CollectorResponse resp;
  const auto a = resp.topology.add_node(VNode{VNodeKind::kHost, "host@10.0.0.1", ip("10.0.0.1")});
  const auto r = resp.topology.add_node(VNode{VNodeKind::kRouter, "rtr@10.0.0.254", ip("10.0.0.254")});
  const auto v = resp.topology.add_node(VNode{VNodeKind::kVirtualSwitch, "vs:x", {}});
  resp.topology.add_edge(VEdge{a, r, 100e6, 12.5e6, 0.25e6, 0.0015, "edge-1"});
  resp.topology.add_edge(VEdge{r, v, 45e6, 0, 0, 0.02, "edge-2"});
  resp.cost_s = 0.125;
  resp.complete = false;
  return resp;
}

void expect_equal(const CollectorResponse& x, const CollectorResponse& y) {
  EXPECT_DOUBLE_EQ(x.cost_s, y.cost_s);
  EXPECT_EQ(x.complete, y.complete);
  ASSERT_EQ(x.topology.node_count(), y.topology.node_count());
  ASSERT_EQ(x.topology.edge_count(), y.topology.edge_count());
  for (std::size_t i = 0; i < x.topology.node_count(); ++i) {
    EXPECT_EQ(x.topology.nodes()[i].kind, y.topology.nodes()[i].kind);
    EXPECT_EQ(x.topology.nodes()[i].name, y.topology.nodes()[i].name);
    EXPECT_EQ(x.topology.nodes()[i].addr, y.topology.nodes()[i].addr);
  }
  for (std::size_t i = 0; i < x.topology.edge_count(); ++i) {
    const VEdge& ex = x.topology.edges()[i];
    const VEdge& ey = y.topology.edges()[i];
    EXPECT_EQ(ex.a, ey.a);
    EXPECT_EQ(ex.b, ey.b);
    EXPECT_DOUBLE_EQ(ex.capacity_bps, ey.capacity_bps);
    EXPECT_DOUBLE_EQ(ex.util_ab_bps, ey.util_ab_bps);
    EXPECT_DOUBLE_EQ(ex.util_ba_bps, ey.util_ba_bps);
    EXPECT_EQ(ex.id, ey.id);
  }
}

TEST(AsciiProtocol, QueryRoundTrip) {
  const std::vector<net::Ipv4Address> nodes{ip("10.0.0.1"), ip("10.0.0.2")};
  const auto decoded = ascii_decode_query(ascii_encode_query(nodes));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, nodes);
}

TEST(AsciiProtocol, EmptyQueryRoundTrip) {
  const auto decoded = ascii_decode_query(ascii_encode_query({}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(AsciiProtocol, QueryRejectsMalformed) {
  EXPECT_FALSE(ascii_decode_query(""));
  EXPECT_FALSE(ascii_decode_query("HELLO\n"));
  EXPECT_FALSE(ascii_decode_query("QUERY 1\nNODE not-an-ip\nEND\n"));
  EXPECT_FALSE(ascii_decode_query("QUERY 1\nNODE 10.0.0.1\n"));  // missing END
}

TEST(AsciiProtocol, ResponseRoundTrip) {
  const CollectorResponse resp = sample_response();
  const auto decoded = ascii_decode_response(ascii_encode_response(resp));
  ASSERT_TRUE(decoded.has_value());
  expect_equal(resp, *decoded);
}

TEST(AsciiProtocol, ResponseRejectsCorruption) {
  const std::string wire = ascii_encode_response(sample_response());
  EXPECT_FALSE(ascii_decode_response("GARBAGE"));
  // Edge referencing a nonexistent node index.
  std::string bad = "TOPOLOGY 1 1\nVNODE 0 host h 10.0.0.1\nVEDGE 0 7 1 0 0 0 e\nEND\n";
  EXPECT_FALSE(ascii_decode_response(bad));
}

TEST(XmlDom, BuildAndSerialize) {
  XmlElement root("query");
  root.add_child("node").set_attr("addr", std::string("10.0.0.1"));
  EXPECT_EQ(root.to_string(), "<query><node addr=\"10.0.0.1\"/></query>");
}

TEST(XmlDom, ParseRoundTripWithEscapes) {
  XmlElement root("a");
  root.set_attr("k", std::string("x<y&\"z'"));
  root.add_child("b").text = "1 < 2 & 3";
  const std::string wire = root.to_string();
  auto parsed = xml_parse(wire);
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->attr("k").value(), "x<y&\"z'");
  EXPECT_EQ(parsed->first_child("b")->text, "1 < 2 & 3");
}

TEST(XmlDom, ParseRejectsMalformed) {
  EXPECT_EQ(xml_parse(""), nullptr);
  EXPECT_EQ(xml_parse("<a>"), nullptr);
  EXPECT_EQ(xml_parse("<a></b>"), nullptr);
  EXPECT_EQ(xml_parse("<a attr></a>"), nullptr);
  EXPECT_EQ(xml_parse("<a>text</a><b/>"), nullptr);  // two roots
}

TEST(XmlDom, ParseXmlDeclaration) {
  auto parsed = xml_parse("<?xml version=\"1.0\"?><root x=\"1\"/>");
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->attr_int("x"), 1);
}

TEST(XmlDom, NumericAttributeHelpers) {
  auto parsed = xml_parse("<n i=\"-5\" d=\"2.5e3\" bad=\"zz\"/>");
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->attr_int("i"), -5);
  EXPECT_DOUBLE_EQ(parsed->attr_double("d"), 2500.0);
  EXPECT_DOUBLE_EQ(parsed->attr_double("bad", 7.0), 7.0);
  EXPECT_EQ(parsed->attr_int("missing", 9), 9);
}

TEST(XmlProtocol, QueryRoundTrip) {
  const std::vector<net::Ipv4Address> nodes{ip("10.1.0.1"), ip("10.2.0.2")};
  const auto decoded = xml_decode_query(xml_encode_query(nodes));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, nodes);
}

TEST(XmlProtocol, ResponseRoundTrip) {
  const CollectorResponse resp = sample_response();
  const auto decoded = xml_decode_response(xml_encode_response(resp));
  ASSERT_TRUE(decoded.has_value());
  expect_equal(resp, *decoded);
}

TEST(XmlProtocol, StalenessAnnotationRoundTrip) {
  // XML (the extensible protocol) carries the staleness quality
  // annotation; the fixed-field ASCII protocol intentionally does not.
  CollectorResponse resp = sample_response();
  resp.max_staleness_s = 12.5;
  resp.topology.edges()[0].staleness_s = 12.5;
  const auto decoded = xml_decode_response(xml_encode_response(resp));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(decoded->max_staleness_s, 12.5);
  EXPECT_DOUBLE_EQ(decoded->topology.edges()[0].staleness_s, 12.5);
  EXPECT_DOUBLE_EQ(decoded->topology.edges()[1].staleness_s, 0.0);

  // Fresh responses omit the attribute entirely (wire compatibility).
  const CollectorResponse fresh = sample_response();
  EXPECT_EQ(xml_encode_response(fresh).find("staleness"), std::string::npos);
}

TEST(XmlProtocol, HistoryRoundTrip) {
  sim::MeasurementHistory hist(16);
  hist.add(1.0, 100.5);
  hist.add(2.0, 200.25);
  const auto decoded = xml_decode_history(xml_encode_history("edge-1", hist));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, "edge-1");
  ASSERT_EQ(decoded->second.size(), 2u);
  EXPECT_DOUBLE_EQ(decoded->second[0].value, 100.5);
  EXPECT_DOUBLE_EQ(decoded->second[1].time, 2.0);
}

TEST(XmlProtocol, HistoryRequestRoundTrip) {
  const auto decoded = xml_decode_history_request(xml_encode_history_request("wan:a-b"));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, "wan:a-b");
}

TEST(HttpFraming, RoundTrip) {
  const auto unframed = http_unframe(http_frame("/query", "<query/>"));
  ASSERT_TRUE(unframed.has_value());
  EXPECT_EQ(unframed->first, "/query");
  EXPECT_EQ(unframed->second, "<query/>");
}

TEST(HttpFraming, RejectsBadLengthAndMethod) {
  EXPECT_FALSE(http_unframe("GET / HTTP/1.0\r\n\r\n"));
  EXPECT_FALSE(http_unframe("POST /x HTTP/1.0\r\nContent-Length: 99\r\n\r\nshort"));
  EXPECT_FALSE(http_unframe("no headers at all"));
}

TEST(Remote, AsciiLoopbackQuery) {
  apps::LanTestbed::Params p;
  p.hosts = 4;
  p.switches = 2;
  apps::LanTestbed lan(p);
  CollectorServer server(*lan.collector, ProtocolKind::kAscii);
  RemoteCollector remote("remote-campus", lan.collector->responsibility(),
                         loopback_transport(server), ProtocolKind::kAscii);
  const auto nodes = lan.host_addrs(3);
  const CollectorResponse resp = remote.query(nodes);
  EXPECT_TRUE(resp.complete);
  for (const auto addr : nodes) EXPECT_NE(resp.topology.find_by_addr(addr), kNoVNode);
  EXPECT_EQ(server.requests_handled(), 1u);
  // ASCII protocol cannot transfer histories (the paper's stated
  // limitation of the first protocol generation).
  EXPECT_EQ(remote.history("anything"), nullptr);
}

TEST(Remote, XmlLoopbackQueryAndHistory) {
  apps::LanTestbed::Params p;
  p.hosts = 4;
  p.switches = 2;
  apps::LanTestbed lan(p);
  const auto nodes = lan.host_addrs(2);
  const auto local = lan.collector->query(nodes);
  lan.engine.advance(30.0);  // several polls -> histories exist

  CollectorServer server(*lan.collector, ProtocolKind::kXml);
  RemoteCollector remote("remote-campus", lan.collector->responsibility(),
                         loopback_transport(server), ProtocolKind::kXml);
  const CollectorResponse resp = remote.query(nodes);
  EXPECT_EQ(resp.topology.node_count(), local.topology.node_count());

  // XML protocol ships measurement histories (the transition's motivation).
  const sim::MeasurementHistory* remote_hist = nullptr;
  for (const VEdge& e : resp.topology.edges()) {
    remote_hist = remote.history(e.id);
    if (remote_hist != nullptr) {
      const auto* local_hist = lan.collector->history(e.id);
      ASSERT_NE(local_hist, nullptr);
      EXPECT_EQ(remote_hist->size(), local_hist->size());
      break;
    }
  }
  EXPECT_NE(remote_hist, nullptr);
}

TEST(Remote, MalformedTransportYieldsIncomplete) {
  RemoteCollector remote("broken", {}, [](const std::string&) { return std::string("garbage"); },
                         ProtocolKind::kAscii);
  const CollectorResponse resp = remote.query({ip("10.0.0.1")});
  EXPECT_FALSE(resp.complete);
  EXPECT_EQ(resp.topology.node_count(), 0u);
}

TEST(Remote, RegistersInMasterHierarchy) {
  // A remote (wire-protocol) collector serving a LAN, registered as a site
  // in a Master Collector: end-to-end layered query.
  apps::LanTestbed::Params p;
  p.hosts = 4;
  p.switches = 2;
  apps::LanTestbed lan(p);
  CollectorServer server(*lan.collector, ProtocolKind::kXml);
  RemoteCollector remote("remote-campus", lan.collector->responsibility(),
                         loopback_transport(server), ProtocolKind::kXml);
  MasterCollector master;
  master.add_site(MasterCollector::Site{"campus", &remote, {}});
  const auto nodes = lan.host_addrs(2);
  const auto resp = master.query(nodes);
  EXPECT_TRUE(resp.complete);
  EXPECT_TRUE(resp.topology
                  .shortest_path(resp.topology.find_by_addr(nodes[0]),
                                 resp.topology.find_by_addr(nodes[1]))
                  .has_value());
}

}  // namespace
}  // namespace remos::core
