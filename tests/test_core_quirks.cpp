// Portability hazards (§6.2): misconfigured and non-standard agents must
// degrade the collector, never wedge it.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "core/snmp_collector.hpp"

namespace remos::core {
namespace {

/// a - r1 - r2 - b with configurable quirks on r1.
struct RoutedPair {
  net::Network net{"quirks"};
  sim::Engine engine;
  net::NodeId a, r1, r2, b;
  std::unique_ptr<snmp::AgentRegistry> agents;
  std::unique_ptr<SnmpCollector> collector;

  RoutedPair() {
    a = net.add_host("a");
    r1 = net.add_router("r1");
    r2 = net.add_router("r2");
    b = net.add_host("b");
    net.connect(a, r1, 100e6);
    net.connect(r1, r2, 45e6);
    net.connect(r2, b, 100e6);
    net.finalize();
    agents = std::make_unique<snmp::AgentRegistry>(net, sim::Rng(1));
  }

  void make_collector() {
    SnmpCollectorConfig cfg;
    cfg.domain = {*net::Ipv4Prefix::parse("10.0.0.0/8")};
    for (const net::Segment& seg : net.segments()) {
      net::Ipv4Address gw{};
      for (auto [node, ifidx] : seg.attachments) {
        (void)ifidx;
        if (net.node(node).kind == net::NodeKind::kRouter) {
          gw = net.node(node).primary_address();
          break;
        }
      }
      cfg.subnets.push_back({seg.prefix, gw, nullptr, false, 0.0});
    }
    collector = std::make_unique<SnmpCollector>(engine, *agents, std::move(cfg));
  }
  [[nodiscard]] net::Ipv4Address addr(net::NodeId id) const {
    return net.node(id).primary_address();
  }
};

TEST(Quirks, MissingRouteMaskDoesNotCrash) {
  RoutedPair t;
  snmp::MibQuirks quirks;
  quirks.hide_route_mask = true;  // old IOS-style agent
  t.agents->configure(t.r1, quirks);
  t.make_collector();
  // The route table degenerates to default routes; discovery must finish
  // (possibly via virtual-switch fallbacks) without wedging.
  const auto resp = t.collector->query({t.addr(t.a), t.addr(t.b)});
  EXPECT_NE(resp.topology.find_by_addr(t.addr(t.a)), kNoVNode);
  EXPECT_NE(resp.topology.find_by_addr(t.addr(t.b)), kNoVNode);
}

TEST(Quirks, FlakyAgentStillConvergesOverRetries) {
  RoutedPair t;
  t.agents->configure(t.r1, snmp::MibQuirks{}, /*drop=*/0.2);
  t.make_collector();
  const auto resp = t.collector->query({t.addr(t.a), t.addr(t.b)});
  // With 20% drops and one retry, the query very likely completes; at
  // minimum both endpoints exist and nothing crashed.
  EXPECT_NE(resp.topology.find_by_addr(t.addr(t.a)), kNoVNode);
  EXPECT_GT(resp.cost_s, 0.0);
}

TEST(Quirks, TotallyDeadRouterBecomesVirtualSwitch) {
  RoutedPair t;
  t.agents->configure(t.r1, snmp::MibQuirks{}, /*drop=*/1.0);
  t.make_collector();
  const auto resp = t.collector->query({t.addr(t.a), t.addr(t.b)});
  bool saw_vswitch = false;
  for (const VNode& n : resp.topology.nodes()) {
    saw_vswitch |= (n.kind == VNodeKind::kVirtualSwitch && n.name.starts_with("vs:dark:"));
  }
  EXPECT_TRUE(saw_vswitch);
  // Dead agents are remembered: the second query costs far less (no
  // repeated timeout storms).
  const double second = t.collector->query({t.addr(t.a), t.addr(t.b)}).cost_s;
  EXPECT_LT(second, 2.5);
}

TEST(Quirks, PairwiseDiscoveryMatchesStarTopology) {
  apps::LanTestbed::Params p;
  p.hosts = 8;
  p.switches = 2;
  apps::LanTestbed lan(p);
  SnmpCollectorConfig cfg = lan.collector->config();
  cfg.name = "pairwise";
  cfg.pairwise_discovery = true;
  SnmpCollector pairwise(lan.engine, *lan.agents, cfg);

  const auto nodes = lan.host_addrs(8);
  const auto star = lan.collector->query(nodes);
  const auto pair = pairwise.query(nodes);
  EXPECT_TRUE(pair.complete);
  // Same connectivity answer, different cost profile.
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const bool star_connected =
        star.topology
            .shortest_path(star.topology.find_by_addr(nodes[0]),
                           star.topology.find_by_addr(nodes[i]))
            .has_value();
    const bool pair_connected =
        pair.topology
            .shortest_path(pair.topology.find_by_addr(nodes[0]),
                           pair.topology.find_by_addr(nodes[i]))
            .has_value();
    EXPECT_TRUE(star_connected);
    EXPECT_TRUE(pair_connected);
  }
  // Pairwise pays more on a cold cache.
  lan.collector->clear_caches();
  pairwise.clear_caches();
  const double star_cost = lan.collector->query(nodes).cost_s;
  const double pair_cost = pairwise.query(nodes).cost_s;
  EXPECT_GT(pair_cost, star_cost);
}

}  // namespace
}  // namespace remos::core
