// MIB views + agents: ifTable/ipRouteTable/Bridge-MIB contents,
// community auth, quirks, live counters, staleness rebuild.
#include <gtest/gtest.h>

#include "net/flows.hpp"
#include "snmp/agent.hpp"
#include "snmp/oids.hpp"

namespace remos::snmp {
namespace {

/// a - sw - r - b (sw-based LAN plus routed p2p subnet to b).
struct Fixture {
  net::Network net{"fix"};
  sim::Engine engine;
  net::NodeId a, b, r, sw;
  std::unique_ptr<net::FlowEngine> flows;
  std::unique_ptr<AgentRegistry> agents;

  Fixture() {
    a = net.add_host("a");
    b = net.add_host("b");
    r = net.add_router("r");
    sw = net.add_switch("sw");
    net.connect(a, sw, 100e6);
    net.connect(sw, r, 1000e6);
    net.connect(r, b, 10e6);
    net.finalize();
    flows = std::make_unique<net::FlowEngine>(engine, net);
    agents = std::make_unique<AgentRegistry>(net, sim::Rng(3));
    agents->set_before_read([this] { flows->sync(); });
  }
  [[nodiscard]] net::Ipv4Address addr(net::NodeId id) const {
    return net.node(id).primary_address();
  }
};

TEST(MibView, GetAndGetNext) {
  MibView v;
  v.set_const(Oid{1, 1}, std::int64_t{10});
  v.set_const(Oid{1, 3}, std::int64_t{30});
  auto got = v.get(Oid{1, 1});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(std::get<std::int64_t>(got->value), 10);
  EXPECT_FALSE(v.get(Oid{1, 2}).has_value());
  auto next = v.get_next(Oid{1, 1});
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->oid.to_string(), "1.3");
  EXPECT_FALSE(v.get_next(Oid{1, 3}).has_value());
}

TEST(MibView, GetNextFromBeforeFirst) {
  MibView v;
  v.set_const(Oid{1, 3, 6}, std::string("x"));
  auto next = v.get_next(Oid{});
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->oid.to_string(), "1.3.6");
}

TEST(DeviceMib, RouterHasSystemIfAndRouteGroups) {
  Fixture f;
  const MibView v = build_device_mib(f.net, f.r);
  EXPECT_TRUE(v.get(oids::kSysName).has_value());
  EXPECT_EQ(std::get<std::string>(v.get(oids::kSysName)->value), "r");
  EXPECT_EQ(std::get<std::int64_t>(v.get(oids::kIfNumber)->value), 2);
  // Route rows exist for both segments.
  EXPECT_GE(v.object_count(), 10u);
  bool found_route = false;
  Oid cursor = oids::kIpRouteNextHop;
  if (auto nh = v.get_next(cursor); nh && oids::kIpRouteNextHop.is_prefix_of(nh->oid)) {
    found_route = true;
  }
  EXPECT_TRUE(found_route);
}

TEST(DeviceMib, SwitchHasBridgeMib) {
  Fixture f;
  const MibView v = build_device_mib(f.net, f.sw);
  auto ports = v.get(oids::kDot1dBaseNumPorts);
  ASSERT_TRUE(ports.has_value());
  EXPECT_EQ(std::get<std::int64_t>(ports->value), 2);
  // FDB row for host a's MAC must exist and point at a's port.
  const Oid row = oids::kDot1dTpFdbPort.concat(oids::mac_index(f.net.node(f.a).mac));
  auto port = v.get(row);
  ASSERT_TRUE(port.has_value());
  EXPECT_GT(std::get<std::int64_t>(port->value), 0);
}

TEST(DeviceMib, IfSpeedSaturatesAt32Bits) {
  net::Network net;
  const net::NodeId r1 = net.add_router("r1");
  const net::NodeId r2 = net.add_router("r2");
  net.connect(r1, r2, 10e9);  // 10 Gb/s exceeds Gauge32
  net.finalize();
  const MibView v = build_device_mib(net, r1);
  auto speed = v.get(oids::kIfSpeed.child(1));
  ASSERT_TRUE(speed.has_value());
  EXPECT_EQ(std::get<Gauge32>(speed->value).value, 0xFFFFFFFFu);
}

TEST(DeviceMib, QuirkHidesIfSpeed) {
  Fixture f;
  MibQuirks quirks;
  quirks.hide_if_speed = true;
  const MibView v = build_device_mib(f.net, f.r, quirks);
  EXPECT_FALSE(v.get(oids::kIfSpeed.child(1)).has_value());
  EXPECT_TRUE(v.get(oids::kIfInOctets.child(1)).has_value());
}

TEST(DeviceMib, CountersReadLive) {
  Fixture f;
  const MibView v = build_device_mib(f.net, f.r);
  const Oid out1 = oids::kIfOutOctets.child(2);  // r's interface toward b
  const auto before = std::get<Counter32>(v.get(out1)->value).value;
  f.flows->start(net::FlowSpec{.src = f.a, .dst = f.b});
  f.engine.advance(2.0);
  f.flows->sync();
  const auto after = std::get<Counter32>(v.get(out1)->value).value;
  EXPECT_NEAR(static_cast<double>(counter32_delta(before, after)), 10e6 / 8 * 2, 10.0);
}

TEST(AgentRegistry, DeploysOnlyManageableDevices) {
  Fixture f;
  EXPECT_EQ(f.agents->agent_count(), 2u);  // router + switch
  EXPECT_NE(f.agents->find(f.addr(f.r)), nullptr);
  EXPECT_NE(f.agents->find(f.addr(f.sw)), nullptr);
  EXPECT_EQ(f.agents->find(f.addr(f.a)), nullptr);  // hosts have no agent
}

TEST(Agent, CommunityAuthEnforced) {
  Fixture f;
  Agent* agent = f.agents->find_by_node(f.r);
  ASSERT_NE(agent, nullptr);
  EXPECT_EQ(agent->get("public", oids::kSysName).status, Status::kOk);
  EXPECT_EQ(agent->get("wrong", oids::kSysName).status, Status::kAuthFailure);
}

TEST(Agent, GetNextWalksInOrder) {
  Fixture f;
  Agent* agent = f.agents->find_by_node(f.r);
  Oid cursor = oids::kIfIndex;
  std::vector<std::int64_t> indices;
  for (;;) {
    auto r = agent->get_next("public", cursor);
    if (r.status != Status::kOk || !oids::kIfIndex.is_prefix_of(r.vb.oid)) break;
    indices.push_back(std::get<std::int64_t>(r.vb.value));
    cursor = r.vb.oid;
  }
  EXPECT_EQ(indices, (std::vector<std::int64_t>{1, 2}));
}

TEST(Agent, DropProbabilityCausesTimeouts) {
  Fixture f;
  f.agents->configure(f.r, MibQuirks{}, /*drop_probability=*/1.0);
  Agent* agent = f.agents->find_by_node(f.r);
  EXPECT_EQ(agent->get("public", oids::kSysName).status, Status::kTimeout);
}

TEST(Agent, RebuildsViewAfterHostMove) {
  net::Network net;
  sim::Engine engine;
  const net::NodeId s0 = net.add_switch("s0");
  const net::NodeId s1 = net.add_switch("s1");
  net.connect(s0, s1, 1e9);
  const net::NodeId h = net.add_host("h");
  net.connect(h, s0, 1e8);
  net.connect(net.add_host("anchor"), s1, 1e8);
  net.finalize();
  AgentRegistry agents(net, sim::Rng(5));
  Agent* agent = agents.find_by_node(s0);
  ASSERT_NE(agent, nullptr);
  const Oid row = oids::kDot1dTpFdbPort.concat(oids::mac_index(net.node(h).mac));
  const auto before = std::get<std::int64_t>(agent->get("public", row).vb.value);
  net.move_host(h, s1, 1e8);
  const auto after = std::get<std::int64_t>(agent->get("public", row).vb.value);
  EXPECT_NE(before, after);  // h now behind the trunk port
}

}  // namespace
}  // namespace remos::snmp
