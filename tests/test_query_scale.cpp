// Query serving at scale — the TSan stress suite for the snapshot read
// path (ROADMAP item 1). Three claims, each test-shaped:
//
//   1. Bit-identity: on a quiescent simulation, the lock-free snapshot
//      path and the retained mutex path produce byte-identical answers
//      for an identical mixed workload (same floats, same order — the
//      pure answer functions are shared, so this pins that refresh()
//      really captures everything a query reads).
//   2. Race-freedom: a reader fleet hammers the snapshot path while the
//      simulation thread mutates the world underneath it — flows start
//      and stop, collectors poll, epochs publish. Run under
//      `cmake --preset tsan` (ci/check.sh does) this is the proof the
//      read path took no lock it needed.
//   3. Accounting: coalescing and admission-control counters are exact,
//      not heuristic — computations equal distinct keys, every other
//      query is a hit, rejections are 0 unless the bound says otherwise.
//
// Registered with the `stress` ctest label.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "apps/testbed.hpp"
#include "core/query_server.hpp"
#include "query_fleet.hpp"
#include "sim/thread_pool.hpp"

namespace remos::core {
namespace {

using apps::WanTestbed;

WanTestbed::Params stress_sites() {
  WanTestbed::Params p;
  p.sites = {{"cmu", 3, 100e6, 10e6}, {"eth", 3, 100e6, 4e6}, {"ucsd", 2, 100e6, 6e6}};
  p.cross_traffic_load = 0.3;
  return p;
}

QueryServerConfig fast_predictions() {
  QueryServerConfig cfg;
  cfg.prediction_model = rps::ModelSpec::ar(4);
  cfg.min_history = 16;
  return cfg;
}

std::vector<net::Ipv4Address> all_hosts(const WanTestbed& w) {
  std::vector<net::Ipv4Address> out;
  for (const auto& site : w.sites) {
    for (net::NodeId h : site.hosts) out.push_back(w.addr(h));
  }
  return out;
}

TEST(QueryScale, SnapshotMatchesLockedOnQuiescentState) {
  WanTestbed w(stress_sites());
  // Warm until benchmark histories can carry an AR(4) fit (>= min_history
  // samples at benchmark_period_s cadence).
  w.warm_up(16.0 * w.params.benchmark_period_s + 30.0);
  const auto universe = all_hosts(w);
  QueryServer server(*w.master, universe, fast_predictions());
  server.refresh();

  const auto queries = fleet::make_workload(universe, 256, /*seed=*/0xF1EE7u);
  sim::ThreadPool pool(4);
  const fleet::FleetResult snap = fleet::run_fleet(server, queries, pool, /*locked=*/false);
  const fleet::FleetResult locked = fleet::run_fleet(server, queries, pool, /*locked=*/true);
  ASSERT_EQ(snap.answers.size(), locked.answers.size());
  std::size_t predictions = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(snap.answers[i], locked.answers[i]) << "query " << i << " diverged";
    if (queries[i].kind == fleet::Query::Kind::kPredict &&
        snap.answers[i] != "predict none\n") {
      ++predictions;
    }
  }
  // The workload must actually exercise predictions, or bit-identity on
  // the predict path proves nothing.
  EXPECT_GT(predictions, 0u);
}

TEST(QueryScale, ReadersRaceMutatingSimulation) {
  WanTestbed w(stress_sites());
  w.warm_up(16.0 * w.params.benchmark_period_s + 30.0);
  const auto universe = all_hosts(w);
  QueryServer server(*w.master, universe, fast_predictions());

  const auto queries = fleet::make_workload(universe, 192, /*seed=*/0xBADC0DEu);
  sim::ThreadPool pool(4);

  // Reader fleet: three full passes over the workload on pool threads
  // while this (simulation) thread mutates the world underneath them.
  std::vector<std::future<std::size_t>> readers;
  for (int pass = 0; pass < 3; ++pass) {
    readers.push_back(pool.submit([&server, &queries] {
      std::size_t bytes = 0;
      for (const fleet::Query& q : queries) {
        bytes += fleet::answer_query(server, q, /*locked=*/false).size();
      }
      return bytes;
    }));
  }

  // Concurrent mutation: flows start/stop, the engine advances (collector
  // polls, benchmark probes, cross traffic), fresh epochs publish.
  const net::NodeId src = w.host("cmu", 0);
  const net::NodeId dst = w.host("eth", 0);
  for (int round = 0; round < 10; ++round) {
    const net::FlowId f =
        w.flows->start({.src = src, .dst = dst, .demand_bps = 2e6 + 1e5 * round});
    w.engine.advance(w.params.poll_interval_s);
    server.refresh();
    w.flows->stop(f);
    w.engine.advance(1.0);
  }
  for (auto& r : readers) EXPECT_GT(r.get(), 0u);
  EXPECT_GE(server.epochs_published(), 11u);

  // Quiescent checkpoint: mutation stopped; after one more refresh the two
  // paths must agree bit-for-bit again.
  server.refresh();
  const fleet::FleetResult snap = fleet::run_fleet(server, queries, pool, /*locked=*/false);
  const fleet::FleetResult locked = fleet::run_fleet(server, queries, pool, /*locked=*/true);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(snap.answers[i], locked.answers[i]) << "query " << i << " diverged post-mutation";
  }
}

TEST(QueryScale, CoalescingAccountingIsExact) {
  WanTestbed w(stress_sites());
  w.warm_up(16.0 * w.params.benchmark_period_s + 30.0);
  const auto universe = all_hosts(w);
  QueryServer server(*w.master, universe, fast_predictions());
  server.refresh();

  const auto queries = fleet::make_workload(universe, 512, /*seed=*/0xC0A1E5CEu);
  const fleet::WorkloadStats ws = fleet::workload_stats(queries);
  const std::uint64_t base_queries = server.queries_total();
  sim::ThreadPool pool(4);
  (void)fleet::run_fleet(server, queries, pool, /*locked=*/false);

  EXPECT_EQ(server.queries_total() - base_queries, queries.size());
  EXPECT_EQ(server.computations(), ws.distinct_keys);
  EXPECT_EQ(server.coalesce_hits(), ws.flow_queries + ws.predict_queries - ws.distinct_keys);
  EXPECT_EQ(server.predict_rejected(), 0u);

  // Same workload again, same epoch: every flow/predict answer is memoized
  // — zero new computations.
  (void)fleet::run_fleet(server, queries, pool, /*locked=*/false);
  EXPECT_EQ(server.computations(), ws.distinct_keys);
  EXPECT_EQ(server.coalesce_hits(), 2 * (ws.flow_queries + ws.predict_queries) - ws.distinct_keys);

  // New epoch: memos pruned, the same workload computes afresh.
  server.refresh();
  (void)fleet::run_fleet(server, queries, pool, /*locked=*/false);
  EXPECT_EQ(server.computations(), 2 * ws.distinct_keys);
}

TEST(QueryScale, AdmissionControlBoundsPredictFits) {
  WanTestbed w(stress_sites());
  w.warm_up(16.0 * w.params.benchmark_period_s + 30.0);
  const auto universe = all_hosts(w);
  QueryServerConfig cfg = fast_predictions();
  cfg.max_fits_in_flight = 0;  // degenerate bound: every distinct fit rejected
  QueryServer server(*w.master, universe, cfg);
  server.refresh();

  const FlowRequest req{.src = universe.front(), .dst = universe.back(), .demand_bps = 1e6};
  EXPECT_EQ(server.predict_flow(req, 10), std::nullopt);
  EXPECT_EQ(server.predict_rejected(), 1u);
  // Flow queries are not admission-bounded.
  FlowQuery q;
  q.flows.push_back(req);
  EXPECT_FALSE(server.flow_query(q).empty());
}

}  // namespace
}  // namespace remos::core
