// Oid: parsing, ordering (GETNEXT traversal order), prefix operations.
#include <gtest/gtest.h>

#include "snmp/oid.hpp"
#include "snmp/oids.hpp"
#include "snmp/value.hpp"

namespace remos::snmp {
namespace {

TEST(Oid, ParseAndFormat) {
  const auto oid = Oid::parse("1.3.6.1.2.1");
  ASSERT_TRUE(oid.has_value());
  EXPECT_EQ(oid->to_string(), "1.3.6.1.2.1");
  EXPECT_EQ(oid->size(), 6u);
}

TEST(Oid, ParseToleratesLeadingDot) {
  const auto oid = Oid::parse(".1.3.6");
  ASSERT_TRUE(oid.has_value());
  EXPECT_EQ(oid->to_string(), "1.3.6");
}

TEST(Oid, ParseRejectsMalformed) {
  EXPECT_FALSE(Oid::parse(""));
  EXPECT_FALSE(Oid::parse("."));
  EXPECT_FALSE(Oid::parse("1..3"));
  EXPECT_FALSE(Oid::parse("1.3."));
  EXPECT_FALSE(Oid::parse("1.a.3"));
}

TEST(Oid, LexicographicOrdering) {
  const Oid a{1, 3, 6};
  const Oid b{1, 3, 6, 1};
  const Oid c{1, 3, 7};
  EXPECT_LT(a, b);  // prefix sorts before extension
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
}

TEST(Oid, ChildAndConcat) {
  const Oid base{1, 3};
  EXPECT_EQ(base.child(6).to_string(), "1.3.6");
  EXPECT_EQ(base.concat(Oid{6, 1}).to_string(), "1.3.6.1");
  EXPECT_EQ(base.to_string(), "1.3");  // original untouched
}

TEST(Oid, PrefixChecks) {
  const Oid base{1, 3, 6};
  EXPECT_TRUE(base.is_prefix_of(Oid{1, 3, 6, 1, 2}));
  EXPECT_TRUE(base.is_prefix_of(base));
  EXPECT_FALSE(base.is_prefix_of(Oid{1, 3}));
  EXPECT_FALSE(base.is_prefix_of(Oid{1, 3, 7}));
}

TEST(Oid, SuffixAfter) {
  const Oid full{1, 3, 6, 1, 42};
  EXPECT_EQ(full.suffix_after(Oid{1, 3, 6, 1}).to_string(), "42");
  EXPECT_TRUE(full.suffix_after(full).empty());
}

TEST(Oids, MacIndexRoundTrip) {
  const std::uint64_t mac = 0x020000000007ull;
  const Oid index = oids::mac_index(mac);
  EXPECT_EQ(index.size(), 6u);
  EXPECT_EQ(index.to_string(), "2.0.0.0.0.7");
  EXPECT_EQ(oids::mac_from_index(index), mac);
}

TEST(Oids, IpIndexRoundTrip) {
  const auto addr = *net::Ipv4Address::parse("10.1.2.3");
  const Oid index = oids::ip_index(addr);
  EXPECT_EQ(index.to_string(), "10.1.2.3");
  EXPECT_EQ(oids::ip_from_index(index), addr);
}

TEST(Oids, WellKnownRelationships) {
  EXPECT_TRUE(oids::kIfTableEntry.is_prefix_of(oids::kIfSpeed));
  EXPECT_TRUE(oids::kIfTableEntry.is_prefix_of(oids::kIfInOctets));
  EXPECT_TRUE(oids::kIpRouteEntry.is_prefix_of(oids::kIpRouteNextHop));
  EXPECT_TRUE(oids::kDot1dTpFdbEntry.is_prefix_of(oids::kDot1dTpFdbPort));
}

TEST(Counter32, DeltaWithoutWrap) {
  EXPECT_EQ(counter32_delta(100, 250), 150u);
  EXPECT_EQ(counter32_delta(0, 0), 0u);
}

TEST(Counter32, DeltaAcrossWrap) {
  EXPECT_EQ(counter32_delta(0xFFFFFF00u, 0x100u), 0x200u);
  EXPECT_EQ(counter32_delta(0xFFFFFFFFu, 0x0u), 1u);
}

}  // namespace
}  // namespace remos::snmp
