// SnmpClient: walks, latency metering, timeouts/retries, parallel lanes.
#include <gtest/gtest.h>

#include "snmp/client.hpp"
#include "snmp/oids.hpp"

namespace remos::snmp {
namespace {

struct Fixture {
  net::Network net{"fix"};
  net::NodeId r, sw;
  std::unique_ptr<AgentRegistry> agents;

  Fixture() {
    const net::NodeId a = net.add_host("a");
    const net::NodeId b = net.add_host("b");
    r = net.add_router("r");
    sw = net.add_switch("sw");
    net.connect(a, sw, 100e6);
    net.connect(sw, r, 1000e6);
    net.connect(r, b, 10e6);
    net.finalize();
    agents = std::make_unique<AgentRegistry>(net, sim::Rng(1));
  }
  [[nodiscard]] net::Ipv4Address addr(net::NodeId id) const {
    return net.node(id).primary_address();
  }
};

TEST(SnmpClient, GetReturnsValueAndCharges) {
  Fixture f;
  SnmpClient client(*f.agents);
  auto r = client.get(f.addr(f.r), "public", oids::kSysName);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::get<std::string>(r.vb.value), "r");
  EXPECT_EQ(client.request_count(), 1u);
  EXPECT_GT(client.consumed_s(), 0.0);
}

TEST(SnmpClient, UnknownAgentTimesOutWithRetries) {
  Fixture f;
  SnmpClient client(*f.agents, ClientConfig{1.0, 1});
  auto r = client.get(*net::Ipv4Address::parse("1.2.3.4"), "public", oids::kSysName);
  EXPECT_EQ(r.status, Status::kTimeout);
  EXPECT_EQ(client.request_count(), 2u);       // initial + 1 retry
  // Two timeout budgets plus the 0.5 s default backoff before the retry.
  EXPECT_DOUBLE_EQ(client.consumed_s(), 2.5);
}

TEST(SnmpClient, ZeroBackoffRetriesImmediately) {
  Fixture f;
  SnmpClient client(*f.agents, ClientConfig{.timeout_s = 1.0, .retries = 1, .backoff_base_s = 0.0});
  (void)client.get(*net::Ipv4Address::parse("1.2.3.4"), "public", oids::kSysName);
  EXPECT_DOUBLE_EQ(client.consumed_s(), 2.0);  // timeouts only, no waits
}

TEST(SnmpClient, BackoffGrowsExponentiallyAndCaps) {
  Fixture f;
  SnmpClient client(*f.agents, ClientConfig{.timeout_s = 1.0,
                                            .retries = 5,
                                            .backoff_base_s = 0.5,
                                            .backoff_multiplier = 2.0,
                                            .backoff_max_s = 2.0});
  (void)client.get(*net::Ipv4Address::parse("1.2.3.4"), "public", oids::kSysName);
  // 6 timeouts + backoffs 0.5, 1.0, 2.0 (capped), 2.0, 2.0.
  EXPECT_DOUBLE_EQ(client.consumed_s(), 6.0 + 0.5 + 1.0 + 2.0 + 2.0 + 2.0);
}

TEST(SnmpClient, HealthTracksFailuresAndRecovery) {
  Fixture f;
  SnmpClient client(*f.agents);
  double now = 0.0;
  client.set_clock([&now] { return now; });
  const net::Ipv4Address router = f.addr(f.r);

  EXPECT_EQ(client.health(router), nullptr);  // never addressed
  (void)client.get(router, "public", oids::kSysName);
  const AgentHealth* h = client.health(router);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->successes, 1u);
  EXPECT_EQ(h->consecutive_failures, 0u);
  EXPECT_DOUBLE_EQ(h->last_success_s, 0.0);

  // Agent goes down: every exhausted request counts one logical failure.
  f.agents->find_by_node(f.r)->down = true;
  now = 10.0;
  (void)client.get(router, "public", oids::kSysName);
  (void)client.get(router, "public", oids::kSysDescr);
  EXPECT_EQ(h->failures, 2u);
  EXPECT_EQ(h->consecutive_failures, 2u);
  EXPECT_DOUBLE_EQ(h->last_failure_s, 10.0);
  EXPECT_DOUBLE_EQ(h->last_success_s, 0.0);

  // Recovery resets the consecutive counter but keeps the totals.
  f.agents->find_by_node(f.r)->down = false;
  now = 20.0;
  (void)client.get(router, "public", oids::kSysName);
  EXPECT_EQ(h->consecutive_failures, 0u);
  EXPECT_EQ(h->failures, 2u);
  EXPECT_EQ(h->successes, 2u);
  EXPECT_DOUBLE_EQ(h->last_success_s, 20.0);
}

TEST(SnmpClient, AnsweredErrorsCountAsAlive) {
  Fixture f;
  SnmpClient client(*f.agents);
  // kNoSuchName is a definitive answer from a live agent, not a failure.
  auto r = client.get(f.addr(f.sw), "public", oids::kIpRouteNextHop);
  EXPECT_EQ(r.status, Status::kNoSuchName);
  const AgentHealth* h = client.health(f.addr(f.sw));
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->consecutive_failures, 0u);
  EXPECT_EQ(h->successes, 1u);
}

TEST(SnmpClient, WrongCommunityLooksLikeTimeout) {
  Fixture f;
  SnmpClient client(*f.agents, ClientConfig{0.5, 0});
  auto r = client.get(f.addr(f.r), "secret", oids::kSysName);
  EXPECT_EQ(r.status, Status::kAuthFailure);
  EXPECT_DOUBLE_EQ(client.consumed_s(), 0.5);  // burned the timeout budget
}

TEST(SnmpClient, WalkCollectsSubtreeInOrder) {
  Fixture f;
  SnmpClient client(*f.agents);
  Status status = Status::kTimeout;
  const auto rows = client.walk(f.addr(f.r), "public", oids::kIfSpeed, &status);
  EXPECT_EQ(status, Status::kOk);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(oids::kIfSpeed.is_prefix_of(rows[0].oid));
  EXPECT_LT(rows[0].oid, rows[1].oid);
}

TEST(SnmpClient, WalkOfMissingSubtreeIsEmpty) {
  Fixture f;
  SnmpClient client(*f.agents);
  Status status = Status::kTimeout;
  // Switch has no ipRouteTable.
  const auto rows = client.walk(f.addr(f.sw), "public", oids::kIpRouteNextHop, &status);
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(status, Status::kOk);
}

TEST(SnmpClient, WalkCostScalesWithRows) {
  Fixture f;
  SnmpClient client(*f.agents);
  const double c1 = client.metered(
      [&] { client.walk(f.addr(f.r), "public", oids::kIfSpeed); });
  const double c2 = client.metered(
      [&] { client.walk(f.addr(f.r), "public", oids::kIfTableEntry); });
  EXPECT_GT(c2, c1);  // whole ifTable has more rows than one column
}

TEST(SnmpClient, ParallelChargesMaxLane) {
  Fixture f;
  SnmpClient client(*f.agents);
  const net::Ipv4Address router = f.addr(f.r);
  const net::Ipv4Address sw = f.addr(f.sw);
  // Sequential baseline.
  SnmpClient seq(*f.agents);
  seq.get(router, "public", oids::kSysName);
  seq.get(sw, "public", oids::kSysName);
  const double sequential = seq.consumed_s();

  std::vector<std::function<void()>> lanes;
  lanes.emplace_back([&] { client.get(router, "public", oids::kSysName); });
  lanes.emplace_back([&] { client.get(sw, "public", oids::kSysName); });
  client.parallel(lanes);
  EXPECT_LT(client.consumed_s(), sequential);
  EXPECT_DOUBLE_EQ(client.consumed_s(), sequential / 2.0);  // equal lane costs
}

TEST(SnmpClient, ParallelLaneWithSequentialChainCostsChain) {
  Fixture f;
  SnmpClient client(*f.agents);
  const net::Ipv4Address router = f.addr(f.r);
  std::vector<std::function<void()>> lanes;
  lanes.emplace_back([&] {
    client.get(router, "public", oids::kSysName);
    client.get(router, "public", oids::kSysDescr);
  });
  lanes.emplace_back([&] { client.get(router, "public", oids::kSysName); });
  client.parallel(lanes);
  SnmpClient two(*f.agents);
  two.get(router, "public", oids::kSysName);
  two.get(router, "public", oids::kSysDescr);
  EXPECT_DOUBLE_EQ(client.consumed_s(), two.consumed_s());  // max lane = 2 gets
}

TEST(SnmpClient, MeteredReturnsDelta) {
  Fixture f;
  SnmpClient client(*f.agents);
  client.get(f.addr(f.r), "public", oids::kSysName);
  const double delta = client.metered([&] {
    client.get(f.addr(f.r), "public", oids::kSysName);
  });
  EXPECT_GT(delta, 0.0);
  EXPECT_LT(delta, client.consumed_s());
}

TEST(SnmpClient, ChargeAddsVirtualTime) {
  Fixture f;
  SnmpClient client(*f.agents);
  client.charge(1.25);
  EXPECT_DOUBLE_EQ(client.consumed_s(), 1.25);
}

TEST(SnmpClient, BeforeReadHookInvoked) {
  Fixture f;
  int calls = 0;
  f.agents->set_before_read([&] { ++calls; });
  SnmpClient client(*f.agents);
  client.get(f.addr(f.r), "public", oids::kSysName);
  client.get_next(f.addr(f.r), "public", oids::kSysName);
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace remos::snmp
