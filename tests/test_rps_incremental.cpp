// IncrementalArFitter: sliding-window sums vs the batch Yule-Walker fit.
// The contract under test is the one src/rps/incremental.hpp documents —
// identical window contents => phi/sigma2 within 1e-9 relative tolerance,
// across add/evict wraparound and resyncs — plus the RingWindow
// zero-element-move complexity pin that replaced the old front-erase
// buffer.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rps/incremental.hpp"
#include "rps/linear.hpp"
#include "rps/series.hpp"
#include "sim/rng.hpp"

namespace remos::rps {
namespace {

constexpr double kRelTol = 1e-9;

void expect_close(double got, double want, const char* what) {
  const double scale = std::max({1.0, std::abs(got), std::abs(want)});
  EXPECT_LE(std::abs(got - want), kRelTol * scale) << what << ": " << got << " vs " << want;
}

/// Batch fit over the fitter's current window, via the public linearizer.
ArFit batch_fit(const IncrementalArFitter& fitter, std::vector<double>& scratch) {
  fitter.samples().copy_to(scratch);
  return fit_ar_yule_walker(scratch, fitter.order());
}

void expect_matches_batch(const IncrementalArFitter& fitter, std::vector<double>& scratch) {
  const ArFit batch = batch_fit(fitter, scratch);
  const ArFit inc = fitter.fit();
  ASSERT_EQ(inc.phi.size(), batch.phi.size());
  for (std::size_t j = 0; j < batch.phi.size(); ++j) {
    expect_close(inc.phi[j], batch.phi[j], "phi");
  }
  expect_close(inc.sigma2, batch.sigma2, "sigma2");
  expect_close(fitter.mean(), mean(scratch), "mean");
}

TEST(RingWindow, OldestFirstAndEviction) {
  RingWindow ring(3);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.push_sample(1.0));
  EXPECT_FALSE(ring.push_sample(2.0));
  EXPECT_FALSE(ring.push_sample(3.0));
  EXPECT_TRUE(ring.full());
  EXPECT_TRUE(ring.push_sample(4.0));  // evicts 1.0
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_DOUBLE_EQ(ring[0], 2.0);
  EXPECT_DOUBLE_EQ(ring[1], 3.0);
  EXPECT_DOUBLE_EQ(ring[2], 4.0);
}

TEST(RingWindow, AssignKeepsTail) {
  RingWindow ring(3);
  const std::vector<double> xs{1, 2, 3, 4, 5};
  ring.assign(xs);
  EXPECT_DOUBLE_EQ(ring[0], 3.0);
  EXPECT_DOUBLE_EQ(ring[2], 5.0);
  std::vector<double> out;
  ring.copy_to(out);
  EXPECT_EQ(out, (std::vector<double>{3, 4, 5}));
}

TEST(RingWindow, ZeroCapacityThrows) {
  EXPECT_THROW(RingWindow(0), std::invalid_argument);
}

// The complexity regression pin: the old fit buffer erased its front on
// every post-prime sample, moving window-1 elements per push. The ring
// moves elements only when linearizing (assign / copy_to), never on push.
TEST(RingWindow, PushMovesNoElements) {
  RingWindow ring(64);
  std::vector<double> xs(64, 1.0);
  ring.assign(xs);
  EXPECT_EQ(ring.element_moves(), 64u);  // the linearized prime
  for (int i = 0; i < 1000; ++i) ring.push_sample(static_cast<double>(i));
  EXPECT_EQ(ring.element_moves(), 64u);  // steady state: zero per push
  std::vector<double> out;
  ring.copy_to(out);
  EXPECT_EQ(ring.element_moves(), 128u);  // copy_to pays size() once
}

TEST(IncrementalArFitter, MatchesBatchAcrossOrdersSeedsAndWindows) {
  std::vector<double> scratch;
  for (const std::size_t order : {1u, 4u, 8u, 16u}) {
    for (const std::size_t window : {32u, 100u, 257u}) {
      if (window <= order + 1) continue;
      for (const std::uint64_t seed : {7ull, 99ull, 4242ull}) {
        sim::Rng rng(seed);
        IncrementalArFitter fitter(order, window);
        // Prime, then push through three window turnovers so every ring
        // slot is overwritten and several resyncs fire.
        std::vector<double> prime(window);
        for (double& x : prime) x = 50.0 + rng.normal(0.0, 3.0);
        fitter.assign(prime);
        expect_matches_batch(fitter, scratch);
        for (std::size_t t = 0; t < 3 * window; ++t) {
          fitter.push(50.0 + rng.normal(0.0, 3.0));
          if (t % 17 == 0) expect_matches_batch(fitter, scratch);
        }
        expect_matches_batch(fitter, scratch);
        EXPECT_GE(fitter.resyncs(), 3u);
      }
    }
  }
}

TEST(IncrementalArFitter, PartialWindowMatchesBatch) {
  std::vector<double> scratch;
  sim::Rng rng(5);
  IncrementalArFitter fitter(4, 128);
  for (std::size_t t = 0; t < 64; ++t) {  // never fills the ring
    fitter.push(rng.normal(10.0, 2.0));
    if (fitter.fittable()) expect_matches_batch(fitter, scratch);
  }
}

// Large mean, small variance — the cancellation regime the offset shift
// exists for. Without it the running sums would lose most of their
// significant digits and 1e-9 would be unreachable.
TEST(IncrementalArFitter, LargeOffsetSmallSignal) {
  std::vector<double> scratch;
  sim::Rng rng(21);
  IncrementalArFitter fitter(8, 200);
  std::vector<double> prime(200);
  for (double& x : prime) x = 1.0e8 + rng.normal(0.0, 1.0);
  fitter.assign(prime);
  for (std::size_t t = 0; t < 600; ++t) {
    fitter.push(1.0e8 + rng.normal(0.0, 1.0));
  }
  expect_matches_batch(fitter, scratch);
}

// Long streams without an intervening exact recompute: the per-push float
// drift must stay inside the contract for at least one full resync
// interval, and the periodic resync then re-anchors it forever.
TEST(IncrementalArFitter, ResyncBoundsDriftOverLongStreams) {
  std::vector<double> scratch;
  sim::Rng rng(33);
  IncrementalArFitter fitter(4, 64, /*resync_interval=*/64);
  std::vector<double> prime(64);
  for (double& x : prime) x = 1000.0 + rng.normal(0.0, 5.0);
  fitter.assign(prime);
  for (std::size_t t = 0; t < 64 * 50; ++t) {
    fitter.push(1000.0 + rng.normal(0.0, 5.0));
  }
  EXPECT_EQ(fitter.resyncs(), 50u);
  expect_matches_batch(fitter, scratch);
}

TEST(IncrementalArFitter, ConstantSeriesDegenerateButFinite) {
  std::vector<double> scratch;
  IncrementalArFitter fitter(3, 32);
  for (int t = 0; t < 100; ++t) fitter.push(7.5);
  const ArFit inc = fitter.fit();
  for (double p : inc.phi) EXPECT_TRUE(std::isfinite(p));
  EXPECT_TRUE(std::isfinite(inc.sigma2));
  expect_matches_batch(fitter, scratch);
  EXPECT_DOUBLE_EQ(fitter.mean(), 7.5);
}

TEST(IncrementalArFitter, TooShortThrowsLikeBatch) {
  IncrementalArFitter fitter(4, 32);
  for (int t = 0; t < 5; ++t) {
    fitter.push(static_cast<double>(t));  // size <= order + 1: unfittable
    EXPECT_FALSE(fitter.fittable());
    EXPECT_THROW(fitter.fit(), std::invalid_argument);
  }
  fitter.push(5.0);  // size == order + 2 > order + 1
  EXPECT_TRUE(fitter.fittable());
  EXPECT_NO_THROW(fitter.fit());
}

TEST(IncrementalArFitter, ClearResetsToUnfittable) {
  sim::Rng rng(1);
  IncrementalArFitter fitter(2, 16);
  for (int t = 0; t < 16; ++t) fitter.push(rng.normal(0.0, 1.0));
  EXPECT_TRUE(fitter.fittable());
  fitter.clear();
  EXPECT_EQ(fitter.size(), 0u);
  EXPECT_FALSE(fitter.fittable());
}

TEST(IncrementalArFitter, FitIntoReusesScratch) {
  sim::Rng rng(2);
  IncrementalArFitter fitter(4, 64);
  for (int t = 0; t < 64; ++t) fitter.push(rng.normal(5.0, 1.0));
  ArFit out;
  ArFitScratch scratch;
  fitter.fit_into(out, scratch);
  const ArFit once = out;
  fitter.fit_into(out, scratch);  // second call reuses capacity
  EXPECT_EQ(out.phi, once.phi);
  EXPECT_EQ(out.sigma2, once.sigma2);
}

// levinson_durbin_into must be float-identical to the allocating wrapper —
// the incremental and batch paths share the recursion through it.
TEST(LevinsonDurbinInto, BitIdenticalToWrapper) {
  sim::Rng rng(9);
  std::vector<double> xs(256);
  for (double& x : xs) x = rng.normal(0.0, 1.0);
  for (const std::size_t p : {1u, 4u, 8u}) {
    const std::vector<double> gamma = autocovariance(xs, p);
    const ArFit a = levinson_durbin(gamma, p);
    ArFit b;
    ArFitScratch scratch;
    levinson_durbin_into(gamma, p, b, scratch);
    EXPECT_EQ(a.phi, b.phi);
    EXPECT_EQ(a.sigma2, b.sigma2);
  }
}

}  // namespace
}  // namespace remos::rps
