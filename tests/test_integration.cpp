// End-to-end integration scenarios through the full Remos stack:
// failure injection, counter wrap, mobility under monitoring, protocol
// federation, prediction round trips.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "core/prediction_service.hpp"
#include "core/remote.hpp"
#include "snmp/oids.hpp"

namespace remos {
namespace {

using apps::LanTestbed;
using apps::WanTestbed;

TEST(Integration, QueryDuringLiveTrafficReflectsUtilization) {
  LanTestbed::Params p;
  p.hosts = 6;
  p.switches = 2;
  LanTestbed lan(p);
  core::Modeler modeler(*lan.collector);
  // First query discovers the path and starts monitoring it.
  (void)modeler.flow_info(lan.addr(lan.hosts[4]), lan.addr(lan.hosts[1]));

  // Two concurrent flows at different rates; Remos should see the sum on
  // shared segments and the modeler's availability must reflect it.
  lan.flows->start(net::FlowSpec{.src = lan.hosts[0], .dst = lan.hosts[1], .demand_bps = 20e6});
  lan.flows->start(net::FlowSpec{.src = lan.hosts[2], .dst = lan.hosts[1], .demand_bps = 30e6});
  lan.engine.advance(11.0);

  const auto info = modeler.flow_info(lan.addr(lan.hosts[4]), lan.addr(lan.hosts[1]));
  // h1's 100 Mb access carries 50 Mb inbound; a new flow can expect ~50.
  EXPECT_NEAR(info.available_bps, 50e6, 5e6);
}

TEST(Integration, AgentFailureMidOperationDegradesGracefully) {
  LanTestbed::Params p;
  p.hosts = 4;
  p.switches = 2;
  LanTestbed lan(p);
  const auto nodes = lan.host_addrs(4);
  const auto before = lan.collector->query(nodes);
  EXPECT_TRUE(before.complete);

  // sw1's agent starts dropping everything (crash / ACL change).
  lan.agents->configure(lan.switches[1], snmp::MibQuirks{}, /*drop=*/1.0);
  lan.engine.advance(30.0);  // polls hit timeouts; must not wedge anything

  // Queries still answer from cached structure.
  const auto after = lan.collector->query(nodes);
  EXPECT_EQ(after.topology.node_count(), before.topology.node_count());
}

TEST(Integration, NonStandardAgentWithoutIfSpeed) {
  // §6.2: "network elements that were misconfigured or have non-standard
  // features (e.g. non-standard SNMP implementations)". An agent without
  // ifSpeed yields capacity-unknown edges, which the modeler treats as
  // unconstrained rather than zero.
  net::Network net("odd");
  sim::Engine engine;
  const auto a = net.add_host("a");
  const auto r1 = net.add_router("r1");
  const auto r2 = net.add_router("r2");
  const auto b = net.add_host("b");
  net.connect(a, r1, 100e6);
  net.connect(r1, r2, 45e6);
  net.connect(r2, b, 100e6);
  net.finalize();
  snmp::AgentRegistry agents(net, sim::Rng(1));
  snmp::MibQuirks quirks;
  quirks.hide_if_speed = true;
  agents.configure(r1, quirks);

  core::SnmpCollectorConfig cfg;
  cfg.domain = {*net::Ipv4Prefix::parse("10.0.0.0/8")};
  for (const net::Segment& seg : net.segments()) {
    net::Ipv4Address gw{};
    for (auto [node, ifidx] : seg.attachments) {
      (void)ifidx;
      if (net.node(node).kind == net::NodeKind::kRouter) {
        gw = net.node(node).primary_address();
        break;
      }
    }
    cfg.subnets.push_back({seg.prefix, gw, nullptr, false, 0.0});
  }
  core::SnmpCollector collector(engine, agents, std::move(cfg));
  core::Modeler modeler(collector);
  const auto info =
      modeler.flow_info(net.node(a).primary_address(), net.node(b).primary_address());
  EXPECT_TRUE(info.routable());
  // r2's interfaces still report speeds, so the path is not fully unknown.
  EXPECT_GT(info.available_bps, 0.0);
}

TEST(Integration, Counter32WrapHandledByCollector) {
  LanTestbed::Params p;
  p.hosts = 2;
  p.switches = 1;
  LanTestbed lan(p);
  const auto nodes = lan.host_addrs(2);
  (void)lan.collector->query(nodes);

  // Push every monitored counter close to the 2^32 boundary, then run
  // traffic across the wrap. Utilization must stay sane (no 4 GB/s spikes).
  for (net::NodeId id = 0; id < lan.net.node_count(); ++id) {
    for (auto& ifc : lan.net.node(id).interfaces) {
      ifc.in_octets = 0xFFFFFF00ull;
      ifc.out_octets = 0xFFFFFF00ull;
    }
  }
  lan.collector->poll_now();  // re-baseline near the wrap
  lan.flows->start(net::FlowSpec{.src = lan.hosts[0], .dst = lan.hosts[1], .demand_bps = 40e6});
  lan.engine.advance(11.0);
  const auto resp = lan.collector->query(nodes);
  for (const core::VEdge& e : resp.topology.edges()) {
    EXPECT_LT(e.util_ab_bps, 101e6) << e.id;  // within physical limits
    EXPECT_LT(e.util_ba_bps, 101e6) << e.id;
  }
  double max_util = 0.0;
  for (const core::VEdge& e : resp.topology.edges()) {
    max_util = std::max({max_util, e.util_ab_bps, e.util_ba_bps});
  }
  EXPECT_NEAR(max_util, 40e6, 3e6);  // correct rate across the wrap
}

TEST(Integration, MobilityDuringMonitoring) {
  LanTestbed::Params p;
  p.hosts = 6;
  p.switches = 3;
  p.location_check_interval_s = 5.0;
  LanTestbed lan(p);
  core::Modeler modeler(*lan.collector);
  const auto nodes = lan.host_addrs(6);
  (void)modeler.topology_query(nodes);

  // h0 roams across all switches while monitoring runs.
  lan.engine.advance(7.0);
  lan.net.move_host(lan.hosts[0], lan.switches[1], 100e6);
  lan.engine.advance(12.0);
  lan.net.move_host(lan.hosts[0], lan.switches[2], 100e6);
  lan.engine.advance(12.0);
  EXPECT_EQ(lan.bridge->move_count(), 2u);

  // Topology queries reflect the final location: h0 and a host on sw2
  // are now one switch apart.
  const auto resp = lan.collector->query({lan.addr(lan.hosts[0]), lan.addr(lan.hosts[2])});
  const auto path = resp.topology.shortest_path(
      resp.topology.find_by_addr(lan.addr(lan.hosts[0])),
      resp.topology.find_by_addr(lan.addr(lan.hosts[2])));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);
}

TEST(Integration, FullGridStackWithXmlProtocolAndPrediction) {
  // Modeler -> Master -> XML/HTTP remote -> SNMP collector, with an RPS
  // prediction on a collector-held history fetched over the wire.
  LanTestbed::Params p;
  p.hosts = 4;
  p.switches = 2;
  LanTestbed lan(p);
  core::CollectorServer server(*lan.collector, core::ProtocolKind::kXml);
  core::RemoteCollector remote("remote-campus", lan.collector->responsibility(),
                               core::loopback_transport(server), core::ProtocolKind::kXml);
  core::MasterCollector master;
  master.add_site(core::MasterCollector::Site{"campus", &remote, {}});
  core::ModelerConfig mcfg;
  mcfg.min_history = 32;
  mcfg.prediction_model = rps::ModelSpec::ar(4);
  core::Modeler modeler(master, mcfg);

  // Discover first so monitoring begins, then run steady traffic so the
  // histories carry signal.
  (void)modeler.flow_info(lan.addr(lan.hosts[0]), lan.addr(lan.hosts[1]));
  lan.flows->start(net::FlowSpec{.src = lan.hosts[0], .dst = lan.hosts[1], .demand_bps = 25e6});
  lan.engine.advance(5.0 * 40);

  const auto info = modeler.flow_info(lan.addr(lan.hosts[0]), lan.addr(lan.hosts[1]));
  EXPECT_TRUE(info.routable());
  EXPECT_NEAR(info.available_bps, 75e6, 8e6);

  const auto pred = modeler.predict_flow(
      core::FlowRequest{.src = lan.addr(lan.hosts[0]), .dst = lan.addr(lan.hosts[1])}, 5);
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(pred->mean_bps[0], 75e6, 10e6);
}

TEST(Integration, PredictionServiceSharesAcrossConsumers) {
  WanTestbed::Params p;
  p.sites = {{"a", 2, 100e6, 5e6}, {"b", 2, 100e6, 5e6}};
  p.cross_traffic_load = 0.0;
  WanTestbed w(p);
  w.warm_up(16 * w.params.benchmark_period_s + 10.0);
  core::PredictionService service(*w.master, rps::ModelSpec::ar(4));
  const auto p1 = service.predict_resource("wan:a-b", 5);
  ASSERT_TRUE(p1.has_value());
  EXPECT_NEAR(p1->mean[0], 5e6, 1e6);
}

TEST(Integration, TwoApplicationsTwoModelersOneCollector) {
  // "By connecting a different Modeler to each application, the modeler
  // architecture provides the flexibility needed" — two modelers with
  // different post-processing share one collector.
  LanTestbed::Params p;
  p.hosts = 4;
  p.switches = 2;
  LanTestbed lan(p);
  core::ModelerConfig raw_cfg;
  raw_cfg.simplify_topology = false;
  core::Modeler simplifying(*lan.collector);
  core::Modeler raw(*lan.collector, raw_cfg);
  const auto nodes = lan.host_addrs(4);
  const auto t1 = simplifying.topology_query(nodes);
  const auto t2 = raw.topology_query(nodes);
  EXPECT_LT(t1.node_count(), t2.node_count());  // simplification collapsed switches
  // Both agree on flow-level answers.
  const auto i1 = simplifying.flow_info(nodes[0], nodes[1]);
  const auto i2 = raw.flow_info(nodes[0], nodes[1]);
  EXPECT_DOUBLE_EQ(i1.available_bps, i2.available_bps);
}

}  // namespace
}  // namespace remos
