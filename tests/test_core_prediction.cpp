// RPS <-> Remos binding: host-load prediction system, flow bandwidth
// sensor, client-server prediction over collector histories.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "core/prediction_service.hpp"

namespace remos::core {
namespace {

using apps::LanTestbed;
using apps::WanTestbed;

TEST(HostLoadPredictionSystem, StreamsPredictionsPerSample) {
  sim::Engine engine;
  HostLoadPredictionSystem system(engine, sim::Rng(1), /*rate_hz=*/1.0);
  system.start(600);
  EXPECT_TRUE(system.running());
  engine.run_until(100.0);
  EXPECT_EQ(system.predictions_made(), 100u);
  EXPECT_EQ(system.latest().mean.size(), 30u);  // default horizon
  system.stop();
  engine.run_until(150.0);
  EXPECT_EQ(system.predictions_made(), 100u);
}

TEST(HostLoadPredictionSystem, Ar16BeatsSignalVariance) {
  // The paper: "AR(16) predictors produce one-second-ahead error variances
  // that are 70% lower than raw signal variance." Drive the same pipeline
  // (host load sensor -> streaming AR(16)) by hand and compare.
  sim::Engine engine;
  net::HostLoadSensor sensor(engine, sim::Rng(2).fork("hostload-sensor"), 1.0);
  rps::StreamingPredictor predictor(rps::ModelSpec::ar(16));
  sim::Rng prime_rng = sim::Rng(2).fork("prime");
  predictor.prime(net::generate_host_load(600, prime_rng));
  sim::RunningStats errors, signal;
  double predicted_next = 0.0;
  bool have_prediction = false;
  sensor.set_callback([&](sim::Time, double load) {
    signal.add(load);
    if (have_prediction) errors.add(load - predicted_next);
    const auto pred = predictor.push(load);
    predicted_next = pred.mean.empty() ? load : pred.mean[0];
    have_prediction = true;
  });
  sensor.start();
  engine.run_until(2000.0);
  ASSERT_GT(errors.count(), 500u);
  const double err_var = errors.variance();
  const double sig_var = signal.variance();
  EXPECT_LT(err_var, 0.5 * sig_var);  // comfortably beats the raw signal
}

TEST(FlowBandwidthSensor, RecordsAndPredicts) {
  WanTestbed::Params p;
  p.sites = {{"cmu", 2, 100e6, 10e6}, {"eth", 2, 100e6, 4e6}};
  p.cross_traffic_load = 0.0;
  WanTestbed w(p);
  w.warm_up(30.0);
  FlowBandwidthSensor sensor(w.engine, *w.modeler, w.addr(w.host("cmu", 0)),
                             w.addr(w.host("eth", 0)), /*interval_s=*/5.0,
                             rps::ModelSpec::ar(4), /*prime_after=*/16);
  sensor.start();
  w.engine.advance(5.0 * 40);
  EXPECT_GE(sensor.history().size(), 39u);
  const auto pred = sensor.latest_prediction();
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(pred->mean[0], 4e6, 1e6);  // quiet network: ~eth access rate
  sensor.stop();
}

TEST(PredictionService, PredictsCollectorResource) {
  LanTestbed::Params p;
  p.hosts = 4;
  p.switches = 2;
  LanTestbed lan(p);
  const auto a = lan.addr(lan.hosts[0]);
  const auto b = lan.addr(lan.hosts[1]);
  const auto resp = lan.collector->query({a, b});
  // Constant 20 Mb/s flow -> stationary utilization history.
  lan.flows->start(net::FlowSpec{.src = lan.hosts[0], .dst = lan.hosts[1], .demand_bps = 20e6});
  lan.engine.advance(5.0 * 80);

  PredictionService service(*lan.collector, rps::ModelSpec::ar(4));
  bool predicted = false;
  for (const VEdge& e : resp.topology.edges()) {
    const auto pred = service.predict_resource(e.id, 5);
    if (!pred) continue;
    predicted = true;
    if (lan.collector->history(e.id)->latest().value > 1e6) {
      EXPECT_NEAR(pred->mean[0], 20e6, 2e6);
    }
  }
  EXPECT_TRUE(predicted);
}

TEST(PredictionService, UnknownResourceNullopt) {
  LanTestbed lan;
  PredictionService service(*lan.collector);
  EXPECT_FALSE(service.predict_resource("nope", 5).has_value());
}

TEST(PredictionService, ModelOverridePerRequest) {
  LanTestbed::Params p;
  p.hosts = 2;
  p.switches = 1;
  LanTestbed lan(p);
  const auto resp = lan.collector->query(lan.host_addrs(2));
  lan.engine.advance(5.0 * 40);
  PredictionService service(*lan.collector, rps::ModelSpec::ar(16));
  for (const VEdge& e : resp.topology.edges()) {
    // LAST on an idle link predicts 0.
    const auto pred = service.predict_resource(e.id, 3, rps::ModelSpec::last());
    if (pred) {
      EXPECT_DOUBLE_EQ(pred->mean[0], 0.0);
      return;
    }
  }
  FAIL() << "no resource with history";
}

}  // namespace
}  // namespace remos::core
