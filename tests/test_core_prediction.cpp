// RPS <-> Remos binding: host-load prediction system, flow bandwidth
// sensor, client-server prediction over collector histories.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "core/prediction_service.hpp"
#include "core/query_server.hpp"
#include "rps/shared_cache.hpp"

namespace remos::core {
namespace {

using apps::LanTestbed;
using apps::WanTestbed;

TEST(HostLoadPredictionSystem, StreamsPredictionsPerSample) {
  sim::Engine engine;
  HostLoadPredictionSystem system(engine, sim::Rng(1), /*rate_hz=*/1.0);
  system.start(600);
  EXPECT_TRUE(system.running());
  engine.run_until(100.0);
  EXPECT_EQ(system.predictions_made(), 100u);
  EXPECT_EQ(system.latest().mean.size(), 30u);  // default horizon
  system.stop();
  engine.run_until(150.0);
  EXPECT_EQ(system.predictions_made(), 100u);
}

TEST(HostLoadPredictionSystem, Ar16BeatsSignalVariance) {
  // The paper: "AR(16) predictors produce one-second-ahead error variances
  // that are 70% lower than raw signal variance." Drive the same pipeline
  // (host load sensor -> streaming AR(16)) by hand and compare.
  sim::Engine engine;
  net::HostLoadSensor sensor(engine, sim::Rng(2).fork("hostload-sensor"), 1.0);
  rps::StreamingPredictor predictor(rps::ModelSpec::ar(16));
  sim::Rng prime_rng = sim::Rng(2).fork("prime");
  predictor.prime(net::generate_host_load(600, prime_rng));
  sim::RunningStats errors, signal;
  double predicted_next = 0.0;
  bool have_prediction = false;
  sensor.set_callback([&](sim::Time, double load) {
    signal.add(load);
    if (have_prediction) errors.add(load - predicted_next);
    const auto pred = predictor.push(load);
    predicted_next = pred.mean.empty() ? load : pred.mean[0];
    have_prediction = true;
  });
  sensor.start();
  engine.run_until(2000.0);
  ASSERT_GT(errors.count(), 500u);
  const double err_var = errors.variance();
  const double sig_var = signal.variance();
  EXPECT_LT(err_var, 0.5 * sig_var);  // comfortably beats the raw signal
}

TEST(FlowBandwidthSensor, RecordsAndPredicts) {
  WanTestbed::Params p;
  p.sites = {{"cmu", 2, 100e6, 10e6}, {"eth", 2, 100e6, 4e6}};
  p.cross_traffic_load = 0.0;
  WanTestbed w(p);
  w.warm_up(30.0);
  FlowBandwidthSensor sensor(w.engine, *w.modeler, w.addr(w.host("cmu", 0)),
                             w.addr(w.host("eth", 0)), /*interval_s=*/5.0,
                             rps::ModelSpec::ar(4), /*prime_after=*/16);
  sensor.start();
  w.engine.advance(5.0 * 40);
  EXPECT_GE(sensor.history().size(), 39u);
  const auto pred = sensor.latest_prediction();
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(pred->mean[0], 4e6, 1e6);  // quiet network: ~eth access rate
  sensor.stop();
}

TEST(PredictionService, PredictsCollectorResource) {
  LanTestbed::Params p;
  p.hosts = 4;
  p.switches = 2;
  LanTestbed lan(p);
  const auto a = lan.addr(lan.hosts[0]);
  const auto b = lan.addr(lan.hosts[1]);
  const auto resp = lan.collector->query({a, b});
  // Constant 20 Mb/s flow -> stationary utilization history.
  lan.flows->start(net::FlowSpec{.src = lan.hosts[0], .dst = lan.hosts[1], .demand_bps = 20e6});
  lan.engine.advance(5.0 * 80);

  PredictionService service(*lan.collector, rps::ModelSpec::ar(4));
  bool predicted = false;
  for (const VEdge& e : resp.topology.edges()) {
    const auto pred = service.predict_resource(e.id, 5);
    if (!pred) continue;
    predicted = true;
    if (lan.collector->history(e.id)->latest().value > 1e6) {
      EXPECT_NEAR(pred->mean[0], 20e6, 2e6);
    }
  }
  EXPECT_TRUE(predicted);
}

TEST(PredictionService, UnknownResourceNullopt) {
  LanTestbed lan;
  PredictionService service(*lan.collector);
  EXPECT_FALSE(service.predict_resource("nope", 5).has_value());
}

TEST(PredictionService, ModelOverridePerRequest) {
  LanTestbed::Params p;
  p.hosts = 2;
  p.switches = 1;
  LanTestbed lan(p);
  const auto resp = lan.collector->query(lan.host_addrs(2));
  lan.engine.advance(5.0 * 40);
  PredictionService service(*lan.collector, rps::ModelSpec::ar(16));
  for (const VEdge& e : resp.topology.edges()) {
    // LAST on an idle link predicts 0.
    const auto pred = service.predict_resource(e.id, 3, rps::ModelSpec::last());
    if (pred) {
      EXPECT_DOUBLE_EQ(pred->mean[0], 0.0);
      return;
    }
  }
  FAIL() << "no resource with history";
}

// ---- tiered SharedPredictionCache behind predict_from_history ----

VEdge wan_edge() {
  VEdge e;
  e.id = "wan:test-link";  // "wan:" history is available bandwidth directly
  e.capacity_bps = 1e8;
  return e;
}

std::vector<double> bandwidth_history(std::size_t n) {
  sim::Rng rng(77);
  std::vector<double> xs(n);
  double prev = 5e6;
  for (double& x : xs) {
    prev = 5e6 + 0.7 * (prev - 5e6) + rng.normal(0.0, 2e5);
    x = prev;
  }
  return xs;
}

TEST(PredictFromHistory, HotTierMemoizesAndPublishesTemplate) {
  const VEdge edge = wan_edge();
  const auto hist = bandwidth_history(600);
  const rps::ClientServerPredictor predictor(rps::ModelSpec::ar(4));
  const rps::ModelSpec model = rps::ModelSpec::ar(4);
  rps::SharedPredictionCache cache(60.0, [] { return 0.0; });

  const auto uncached =
      predict_from_history(hist, edge, predictor, model, /*horizon=*/8, /*min_history=*/16);
  const auto first =
      predict_from_history(hist, edge, predictor, model, 8, 16, &cache);
  const auto second =
      predict_from_history(hist, edge, predictor, model, 8, 16, &cache);
  ASSERT_TRUE(uncached.has_value());
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  // Caching must not change the answer, only its cost.
  EXPECT_EQ(first->mean_bps, uncached->mean_bps);
  EXPECT_EQ(second->mean_bps, first->mean_bps);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  // The fit published its coefficients as a spec-shape warm template.
  EXPECT_EQ(cache.templates_stored(), 1u);
  EXPECT_TRUE(cache.warm_template(model.to_string() + "#8").has_value());
}

TEST(PredictFromHistory, ShortHistorySeedsFromWarmTemplate) {
  const VEdge edge = wan_edge();
  const rps::ClientServerPredictor predictor(rps::ModelSpec::ar(4));
  const rps::ModelSpec model = rps::ModelSpec::ar(4);
  const auto long_hist = bandwidth_history(600);
  const auto short_hist = bandwidth_history(8);  // < min_history

  // Cacheless: a short history is simply unanswerable.
  EXPECT_FALSE(
      predict_from_history(short_hist, edge, predictor, model, 8, 16).has_value());

  rps::SharedPredictionCache cache(60.0, [] { return 0.0; });
  // Still unanswerable with an empty warm tier.
  EXPECT_FALSE(
      predict_from_history(short_hist, edge, predictor, model, 8, 16, &cache).has_value());
  EXPECT_EQ(cache.warm_misses(), 1u);

  // A same-shape fit elsewhere publishes a template; now the short history
  // seeds from it instead of failing.
  ASSERT_TRUE(
      predict_from_history(long_hist, edge, predictor, model, 8, 16, &cache).has_value());
  const auto seeded =
      predict_from_history(short_hist, edge, predictor, model, 8, 16, &cache);
  ASSERT_TRUE(seeded.has_value());
  EXPECT_EQ(seeded->mean_bps.size(), 8u);
  EXPECT_GT(seeded->mean_bps[0], 0.0);
  EXPECT_EQ(cache.seeds(), 1u);
  EXPECT_EQ(cache.warm_hits(), 1u);
}

TEST(QueryServerTiers, PredictionTierStatsSurfaceCacheCounters) {
  WanTestbed::Params p;
  p.sites = {{"cmu", 2, 100e6, 10e6}, {"eth", 2, 100e6, 4e6}};
  WanTestbed w(p);
  w.warm_up(16.0 * w.params.benchmark_period_s + 30.0);
  std::vector<net::Ipv4Address> universe;
  for (const auto& site : w.sites) {
    for (net::NodeId h : site.hosts) universe.push_back(w.addr(h));
  }
  const FlowRequest req{.src = universe.front(), .dst = universe.back(), .demand_bps = 1e6};

  QueryServerConfig cfg;
  cfg.prediction_model = rps::ModelSpec::ar(4);
  cfg.min_history = 16;
  {
    // Cacheless server: the stats view is all zeros, before and after use.
    QueryServer server(*w.master, universe, cfg);
    ASSERT_TRUE(server.predict_flow(req, 10).has_value());
    const PredictionTierStats stats = server.prediction_tier_stats();
    EXPECT_EQ(stats.hot_hits + stats.hot_misses + stats.warm_hits + stats.warm_misses +
                  stats.seeds + stats.templates_stored,
              0u);
  }

  rps::SharedPredictionCache cache(3600.0, [] { return 0.0; });
  cfg.prediction_cache = &cache;
  QueryServer server(*w.master, universe, cfg);
  ASSERT_TRUE(server.predict_flow(req, 10).has_value());
  // Same request in a fresh epoch: the server's per-epoch memo is gone, so
  // the answer comes from the cache's hot tier.
  server.refresh();
  ASSERT_TRUE(server.predict_flow(req, 10).has_value());
  const PredictionTierStats stats = server.prediction_tier_stats();
  EXPECT_EQ(stats.hot_misses, 1u);
  EXPECT_EQ(stats.hot_hits, 1u);
  EXPECT_EQ(stats.templates_stored, 1u);
  EXPECT_EQ(stats.warm_hits + stats.warm_misses, 0u);
}

}  // namespace
}  // namespace remos::core
