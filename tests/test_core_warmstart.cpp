// Computational-center warm start (§3.1.1's "logical extension"): a
// collector configured with warm_start_nodes pre-discovers them so the
// first application query is already warm.
#include <gtest/gtest.h>

#include "apps/testbed.hpp"
#include "core/snmp_collector.hpp"

namespace remos::core {
namespace {

TEST(WarmStart, FirstQueryIsAlreadyWarm) {
  apps::LanTestbed::Params p;
  p.hosts = 16;
  p.switches = 3;
  apps::LanTestbed lan(p);
  const auto nodes = lan.host_addrs(16);

  // Reference: a cold collector's first-query cost.
  const double cold_cost = lan.collector->query(nodes).cost_s;
  const double warm_cost = lan.collector->query(nodes).cost_s;

  // A second collector configured to pre-monitor the same nodes.
  SnmpCollectorConfig cfg = lan.collector->config();
  cfg.name = "center-snmp";
  cfg.warm_start_nodes = nodes;
  SnmpCollector center(lan.engine, *lan.agents, cfg);
  EXPECT_GT(center.monitored_interface_count(), 0u);  // monitoring began at startup

  const double first_query = center.query(nodes).cost_s;
  EXPECT_LT(first_query, cold_cost / 2.0);
  EXPECT_NEAR(first_query, warm_cost, warm_cost);  // same ballpark as warm
}

TEST(WarmStart, MonitoringRunsBeforeAnyQuery) {
  apps::LanTestbed::Params p;
  p.hosts = 4;
  p.switches = 1;
  apps::LanTestbed lan(p);
  SnmpCollectorConfig cfg = lan.collector->config();
  cfg.name = "center-snmp";
  cfg.warm_start_nodes = lan.host_addrs(4);
  SnmpCollector center(lan.engine, *lan.agents, cfg);

  // Traffic flows; the pre-started monitor sees it without any query.
  lan.flows->start(net::FlowSpec{.src = lan.hosts[0], .dst = lan.hosts[1], .demand_bps = 30e6});
  lan.engine.advance(11.0);
  const auto resp = center.query(lan.host_addrs(2));
  double max_util = 0.0;
  for (const VEdge& e : resp.topology.edges()) {
    max_util = std::max({max_util, e.util_ab_bps, e.util_ba_bps});
  }
  EXPECT_NEAR(max_util, 30e6, 2e6);
}

TEST(WarmStart, EmptyListMeansOnDemand) {
  apps::LanTestbed::Params p;
  p.hosts = 2;
  p.switches = 1;
  apps::LanTestbed lan(p);
  EXPECT_EQ(lan.collector->monitored_interface_count(), 0u);  // default: on-demand
}

}  // namespace
}  // namespace remos::core
