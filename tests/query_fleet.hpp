// Client-fleet harness for query-serving at scale (ROADMAP item 1).
//
// Shared by the TSan stress suite (tests/test_query_scale.cpp), the golden
// transcript pin (tests/test_query_golden.cpp), and the scaling bench
// (bench/micro_query_scale.cpp):
//
//   * a deterministic mixed workload generator (mt19937_64 raw draws, so
//     the same seed produces the same queries on every platform),
//   * full-precision (%.17g) renderers for topology / flow / prediction
//     answers — the bit-identity oracle between the lock-free snapshot
//     path and the retained mutex path, and the golden transcript format,
//   * a fleet runner that drives all queries across a sim::ThreadPool and
//     reports throughput plus exact p50/p95/p99 latency.
//
// Lives in tests/ (not src/): wall-clock timing is a harness concern, and
// tests are exempt from the no-wallclock lint that governs src/.
#pragma once

#include <chrono>
#include <cstdio>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/query_server.hpp"
#include "core/types.hpp"
#include "sim/stats.hpp"
#include "sim/thread_pool.hpp"

namespace remos::fleet {

inline std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Full-precision, order-preserving rendering of a topology answer. Any
/// float that differs in one bit renders differently.
inline std::string render_topology(const core::VirtualTopology& topo) {
  std::string out = "topology nodes=" + std::to_string(topo.node_count()) +
                    " edges=" + std::to_string(topo.edge_count()) + "\n";
  for (const core::VNode& n : topo.nodes()) {
    out += "  node ";
    out += core::to_string(n.kind);
    out += " " + n.name + " " + n.addr.to_string() + "\n";
  }
  for (const core::VEdge& e : topo.edges()) {
    out += "  edge " + std::to_string(e.a) + "-" + std::to_string(e.b) +
           " cap=" + fmt_double(e.capacity_bps) + " ab=" + fmt_double(e.util_ab_bps) +
           " ba=" + fmt_double(e.util_ba_bps) + " lat=" + fmt_double(e.latency_s) +
           " stale=" + fmt_double(e.staleness_s) + " id=" + e.id + "\n";
  }
  return out;
}

inline std::string render_flow_infos(const std::vector<core::FlowInfo>& infos) {
  std::string out = "flows n=" + std::to_string(infos.size()) + "\n";
  for (const core::FlowInfo& f : infos) {
    out += "  flow avail=" + fmt_double(f.available_bps) +
           " bottleneck=" + fmt_double(f.bottleneck_capacity_bps) +
           " lat=" + fmt_double(f.latency_s) + " path=";
    for (const std::string& id : f.path_edge_ids) out += id + ",";
    out += "\n";
  }
  return out;
}

inline std::string render_prediction(const std::optional<core::FlowPrediction>& p) {
  if (!p) return "predict none\n";
  std::string out = "predict model=" + p->model_name + "\n";
  for (std::size_t i = 0; i < p->mean_bps.size(); ++i) {
    out += "  step mean=" + fmt_double(p->mean_bps[i]);
    out += " var=" + fmt_double(i < p->variance.size() ? p->variance[i] : 0.0);
    out += "\n";
  }
  return out;
}

/// One simulated client's query.
struct Query {
  enum class Kind { kTopology, kFlow, kPredict };
  Kind kind = Kind::kTopology;
  std::vector<net::Ipv4Address> nodes;  // topology queries
  core::FlowQuery flow;                 // flow queries
  core::FlowRequest request;            // predict queries
  std::size_t horizon = 30;             // predict queries
};

/// Workload shape facts the bench invariants pin against the server's own
/// counters (distinct keys mirror the QueryServer's coalescing keys).
struct WorkloadStats {
  std::size_t topology_queries = 0;
  std::size_t flow_queries = 0;
  std::size_t predict_queries = 0;
  /// Distinct coalescing keys among flow + predict queries: within one
  /// epoch the server computes exactly this many flow/predict answers.
  std::size_t distinct_keys = 0;
};

/// Deterministic mixed workload over `universe`: ~25% topology queries,
/// ~50% flow queries, ~25% predictions. Pair and demand choices come from
/// raw mt19937_64 draws (bit-exact across platforms); demands are drawn
/// from a small set so identical queries recur — the coalescing surface.
inline std::vector<Query> make_workload(const std::vector<net::Ipv4Address>& universe,
                                        std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto pick = [&](std::size_t n) { return static_cast<std::size_t>(rng() % n); };
  std::vector<Query> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Query q;
    const std::size_t kind = pick(4);
    const std::size_t a = pick(universe.size());
    std::size_t b = pick(universe.size());
    if (b == a) b = (b + 1) % universe.size();
    if (kind == 0) {
      q.kind = Query::Kind::kTopology;
      q.nodes = {universe[a], universe[b]};
      if (pick(2) == 0) q.nodes.push_back(universe[pick(universe.size())]);
    } else if (kind <= 2) {
      q.kind = Query::Kind::kFlow;
      const std::size_t flows = 1 + pick(2);
      for (std::size_t f = 0; f < flows; ++f) {
        std::size_t s = f == 0 ? a : pick(universe.size());
        std::size_t d = f == 0 ? b : pick(universe.size());
        if (d == s) d = (d + 1) % universe.size();
        core::FlowRequest r;
        r.src = universe[s];
        r.dst = universe[d];
        r.demand_bps = static_cast<double>(1 + pick(8)) * 1.25e6;
        q.flow.flows.push_back(r);
      }
    } else {
      q.kind = Query::Kind::kPredict;
      q.request.src = universe[a];
      q.request.dst = universe[b];
      q.request.demand_bps = static_cast<double>(1 + pick(4)) * 2.5e6;
      q.horizon = 15 + 15 * pick(2);
    }
    out.push_back(std::move(q));
  }
  return out;
}

/// Coalescing-relevant shape of a workload. Keys mirror the QueryServer's
/// internal coalescing keys; the checker asserts the server's computation
/// counter equals `distinct_keys`, so any drift between the two keyings is
/// caught, not hidden.
inline WorkloadStats workload_stats(const std::vector<Query>& queries) {
  WorkloadStats stats;
  std::set<std::string> keys;
  for (const Query& q : queries) {
    switch (q.kind) {
      case Query::Kind::kTopology:
        ++stats.topology_queries;
        break;
      case Query::Kind::kFlow: {
        ++stats.flow_queries;
        std::string key = "flow:";
        for (const core::FlowRequest& f : q.flow.flows) {
          key += f.src.to_string() + ">" + f.dst.to_string() + "@" + fmt_double(f.demand_bps) + ";";
        }
        keys.insert(std::move(key));
        break;
      }
      case Query::Kind::kPredict: {
        ++stats.predict_queries;
        keys.insert("predict:" + q.request.src.to_string() + ">" + q.request.dst.to_string() +
                    "@" + fmt_double(q.request.demand_bps) + "#" + std::to_string(q.horizon));
        break;
      }
    }
  }
  stats.distinct_keys = keys.size();
  return stats;
}

/// Answer one query on the requested path, rendered at full precision.
inline std::string answer_query(core::QueryServer& server, const Query& q, bool locked) {
  switch (q.kind) {
    case Query::Kind::kTopology:
      return render_topology(locked ? server.topology_query_locked(q.nodes)
                                    : server.topology_query(q.nodes));
    case Query::Kind::kFlow:
      return render_flow_infos(locked ? server.flow_query_locked(q.flow)
                                      : server.flow_query(q.flow));
    case Query::Kind::kPredict:
      return render_prediction(locked ? server.predict_flow_locked(q.request, q.horizon)
                                      : server.predict_flow(q.request, q.horizon));
  }
  return {};
}

struct FleetResult {
  std::vector<std::string> answers;  // indexed like the query list
  double wall_s = 0.0;
  double throughput_qps = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
};

/// Drive every query across the pool (each query = one simulated client)
/// and measure per-query latency plus fleet wall time. `locked` selects
/// the retained mutex baseline; the caller must keep the simulation
/// quiescent for the duration either way (the locked path fetches from
/// live collectors; the comparison needs a frozen ground truth).
inline FleetResult run_fleet(core::QueryServer& server, const std::vector<Query>& queries,
                             sim::ThreadPool& pool, bool locked) {
  using clock = std::chrono::steady_clock;
  FleetResult result;
  result.answers.resize(queries.size());
  std::vector<double> latency(queries.size(), 0.0);
  const auto fleet_start = clock::now();
  pool.parallel_for(queries.size(), [&](std::size_t i) {
    const auto start = clock::now();
    result.answers[i] = answer_query(server, queries[i], locked);
    latency[i] = std::chrono::duration<double>(clock::now() - start).count();
  });
  result.wall_s = std::chrono::duration<double>(clock::now() - fleet_start).count();
  result.throughput_qps =
      result.wall_s > 0.0 ? static_cast<double>(queries.size()) / result.wall_s : 0.0;
  result.p50_s = sim::exact_quantile(latency, 0.50);
  result.p95_s = sim::exact_quantile(latency, 0.95);
  result.p99_s = sim::exact_quantile(latency, 0.99);
  return result;
}

}  // namespace remos::fleet
