// Observability layer: metric/tracer semantics, exporter formats, and the
// golden-run regression surface — canonical scenarios whose full export
// (counters, histograms, span timeline) is pinned byte-for-byte under
// tests/golden/obs/. Any change to SNMP round-trip counts, cache behavior,
// quarantine decisions, or solver iteration structure shows up here as a
// golden diff instead of a silent perf/behavior drift.
//
// Regenerating after an *intentional* change:
//   REMOS_REGEN_GOLDEN=1 ./tests/test_observability && git diff tests/golden
//
// CI determinism harness: REMOS_OBS_EXPORT_DIR=<dir> makes every golden
// scenario also write its export to <dir>; ci/check.sh runs the binary
// twice and diffs the two directories.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "apps/testbed.hpp"
#include "core/modeler.hpp"
#include "core/obs.hpp"
#include "core/snmp_collector.hpp"
#include "fault_injection.hpp"

namespace remos::core {
namespace {

namespace ftest = remos::testing;

// ---------------------------------------------------------------------------
// primitives
// ---------------------------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramSemantics) {
  if constexpr (!sim::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  obs::clear_all();
  auto& reg = sim::metrics();

  auto& c = reg.counter("t.counter");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);

  auto& g = reg.gauge("t.gauge");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);

  auto& h = reg.histogram("t.hist", {1.0, 10.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (le = inclusive)
  h.observe(5.0);   // bucket 1
  h.observe(100.0); // +Inf bucket
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
}

TEST(Metrics, ZeroAllKeepsRegistrationsClearDropsThem) {
  if constexpr (!sim::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  obs::clear_all();
  auto& reg = sim::metrics();
  auto& c = reg.counter("t.zero");
  c.inc(7);
  reg.zero_all();
  // The handle survives zero_all and keeps working.
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(reg.counters_snapshot().count("t.zero"), 1u);
  reg.clear();
  EXPECT_EQ(reg.counters_snapshot().count("t.zero"), 0u);
}

TEST(Metrics, LookupIsIdempotent) {
  if constexpr (!sim::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  obs::clear_all();
  auto& a = sim::metrics().counter("t.same");
  auto& b = sim::metrics().counter("t.same");
  EXPECT_EQ(&a, &b);
}

TEST(Tracer, NestingParentsAndEarlyEnd) {
  obs::clear_all();
  {
    auto outer = obs::span("outer");
    {
      auto inner = obs::span("inner");
      inner.attr("k", std::string("v"));
    }
    auto sibling = obs::span("sibling");
    sibling.end();
    sibling.end();  // idempotent
  }
  if constexpr (!sim::kObsEnabled) {
    EXPECT_TRUE(obs::tracer().finished().empty());
    return;
  }
  const auto& recs = obs::tracer().finished();
  ASSERT_EQ(recs.size(), 3u);
  // Finish order: inner, sibling, outer.
  EXPECT_EQ(recs[0].name, "inner");
  EXPECT_EQ(recs[1].name, "sibling");
  EXPECT_EQ(recs[2].name, "outer");
  EXPECT_EQ(recs[0].parent, recs[2].id);
  EXPECT_EQ(recs[1].parent, recs[2].id);
  EXPECT_EQ(recs[2].parent, 0u);
  ASSERT_EQ(recs[0].attrs.size(), 1u);
  EXPECT_EQ(recs[0].attrs[0].first, "k");
  EXPECT_EQ(recs[0].attrs[0].second, "v");
}

TEST(Tracer, CapacityCapCountsDrops) {
  if constexpr (!sim::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  obs::clear_all();
  obs::tracer().set_capacity(2);
  for (int i = 0; i < 5; ++i) (void)obs::span("s");
  EXPECT_EQ(obs::tracer().finished().size(), 2u);
  EXPECT_EQ(obs::tracer().dropped(), 3u);
  obs::tracer().set_capacity(65536);
  obs::tracer().reset();
}

TEST(Tracer, SpansReadTheVirtualClock) {
  if constexpr (!sim::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  obs::clear_all();
  {
    sim::Engine engine;
    engine.warp_to(10.0);
    auto sp = obs::span("timed");
    engine.warp_to(12.5);
    sp.end();
    const auto& recs = obs::tracer().finished();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_DOUBLE_EQ(recs[0].start_s, 10.0);
    EXPECT_DOUBLE_EQ(recs[0].end_s, 12.5);
    // A second engine must not steal the binding from the live one.
    sim::Engine usurper;
    usurper.warp_to(99.0);
    EXPECT_DOUBLE_EQ(sim::obs_now(), 12.5);
  }
  // All engines destroyed: the clock reads 0 again.
  EXPECT_DOUBLE_EQ(sim::obs_now(), 0.0);
}

TEST(Exporter, FormatDoubleRoundTrips) {
  for (double v : {0.1, 1.0 / 3.0, 5e-4, 123456789.25, 0.0, -2.75e17}) {
    const std::string s = obs::format_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(Exporter, JsonEscapesMetricNames) {
  if constexpr (!sim::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  obs::clear_all();
  sim::metrics().counter("weird\"name\\with\nnasties").inc();
  const std::string json = obs::export_json({.include_spans = false});
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nnasties"), std::string::npos);
  obs::clear_all();
}

TEST(Exporter, PrometheusShapeAndCumulativeBuckets) {
  if constexpr (!sim::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  obs::clear_all();
  sim::metrics().counter("a.b.c_total").inc(3);
  auto& h = sim::metrics().histogram("lat.s", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  const std::string prom = obs::export_prometheus();
  EXPECT_NE(prom.find("# TYPE remos_a_b_c_total counter\nremos_a_b_c_total 3\n"),
            std::string::npos);
  // Prometheus buckets are cumulative; +Inf equals the total count.
  EXPECT_NE(prom.find("remos_lat_s_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(prom.find("remos_lat_s_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find("remos_lat_s_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(prom.find("remos_lat_s_count 3\n"), std::string::npos);
  obs::clear_all();
}

// ---------------------------------------------------------------------------
// golden scenarios
// ---------------------------------------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

/// Compare `content` against the pinned export tests/golden/obs/<name>.
/// REMOS_REGEN_GOLDEN=1 rewrites the pin; REMOS_OBS_EXPORT_DIR=<dir> also
/// drops a copy there for the CI double-run diff.
void golden_check(const std::string& name, const std::string& content) {
  if (const char* dir = std::getenv("REMOS_OBS_EXPORT_DIR")) {
    write_file(std::string(dir) + "/" + name, content);
  }
  const std::string path = std::string(REMOS_GOLDEN_DIR) + "/obs/" + name;
  if (std::getenv("REMOS_REGEN_GOLDEN") != nullptr) {
    write_file(path, content);
    return;
  }
  const std::string pinned = read_file(path);
  ASSERT_FALSE(pinned.empty()) << path << " missing — run with REMOS_REGEN_GOLDEN=1";
  if (content != pinned) {
    std::size_t i = 0;
    while (i < content.size() && i < pinned.size() && content[i] == pinned[i]) ++i;
    const std::size_t from = i < 80 ? 0 : i - 80;
    FAIL() << name << " drifted from its golden pin at byte " << i
           << "\n--- pinned   ...\n" << pinned.substr(from, 160)
           << "\n--- actual   ...\n" << content.substr(from, 160)
           << "\n(intentional change? REMOS_REGEN_GOLDEN=1 regenerates)";
  }
}

/// Campus LAN: cold query, two poll passes, warm re-query. Pins the SNMP
/// round-trip counts of discovery, the cache hit pattern, and the poll
/// span timeline.
std::string run_lan_scenario() {
  obs::clear_all();
  std::string out;
  {
    apps::LanTestbed::Params p;
    p.hosts = 6;
    p.switches = 2;
    apps::LanTestbed lan(p);
    const auto nodes = lan.host_addrs(4);
    (void)lan.collector->query(nodes);
    lan.engine.advance(12.0);  // polls at 5 and 10
    (void)lan.collector->query(nodes);
    out = obs::export_json();
  }
  return out;
}

/// a - r1 - r2 - b with a scripted r1 outage: pins retry/timeout counts,
/// the quarantine event, and the degraded-then-recovered query spans.
std::string run_fault_scenario() {
  obs::clear_all();
  std::string out;
  {
    net::Network net{"golden-faults"};
    sim::Engine engine;
    const auto a = net.add_host("a");
    const auto r1 = net.add_router("r1");
    const auto r2 = net.add_router("r2");
    const auto b = net.add_host("b");
    net.connect(a, r1, 100e6);
    net.connect(r1, r2, 45e6);
    net.connect(r2, b, 100e6);
    net.finalize();
    snmp::AgentRegistry agents(net, sim::Rng(7));
    SnmpCollectorConfig cfg;
    cfg.domain = {*net::Ipv4Prefix::parse("10.0.0.0/8")};
    for (const net::Segment& seg : net.segments()) {
      net::Ipv4Address gw{};
      for (auto [node, ifidx] : seg.attachments) {
        (void)ifidx;
        if (net.node(node).kind == net::NodeKind::kRouter) {
          gw = net.node(node).primary_address();
          break;
        }
      }
      cfg.subnets.push_back({seg.prefix, gw, nullptr, false, 0.0});
    }
    cfg.quarantine_s = 20.0;
    SnmpCollector collector(engine, agents, std::move(cfg));
    const auto addr = [&](net::NodeId id) { return net.node(id).primary_address(); };
    const auto nodes = {addr(a), addr(b)};

    (void)collector.query(nodes);
    ftest::FaultScript script(engine, agents);
    script.outage(r1, 14.0, 47.0);
    engine.advance(20.0);  // poll at 15 fails -> quarantine
    (void)collector.query(nodes);
    engine.advance(40.0);  // agent back at 47, quarantine lapses
    (void)collector.query(nodes);
    out = obs::export_json();
  }
  return out;
}

/// Two-site WAN through Master Collector + Modeler: pins the site-merge
/// counters, benchmark-driven topology, solver iteration counts, and the
/// modeler latency histogram.
std::string run_wan_scenario() {
  obs::clear_all();
  std::string out;
  {
    apps::WanTestbed::Params p;
    p.sites = {{"alpha", 2, 100e6, 10e6}, {"beta", 2, 100e6, 8e6}};
    apps::WanTestbed wan(p);
    wan.warm_up(30.0);
    FlowQuery q;
    q.flows.push_back(FlowRequest{wan.addr(wan.host("alpha", 0)),
                                  wan.addr(wan.host("beta", 0)), 20e6});
    q.flows.push_back(FlowRequest{wan.addr(wan.host("alpha", 1)),
                                  wan.addr(wan.host("beta", 1)), 5e6});
    (void)wan.modeler->flow_query(q);
    out = obs::export_json();
  }
  return out;
}

TEST(GoldenRun, LanScenarioJsonPinned) {
  if constexpr (!sim::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  const std::string first = run_lan_scenario();
  const std::string second = run_lan_scenario();
  // In-process determinism first: identical rebuild, identical export.
  ASSERT_EQ(first, second) << "same scenario, same process, different export";
  golden_check("lan_small.json", first);
}

TEST(GoldenRun, LanScenarioPrometheusPinned) {
  if constexpr (!sim::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  (void)run_lan_scenario();
  golden_check("lan_small.prom", obs::export_prometheus());
}

TEST(GoldenRun, FaultScenarioJsonPinned) {
  if constexpr (!sim::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  const std::string first = run_fault_scenario();
  const std::string second = run_fault_scenario();
  ASSERT_EQ(first, second) << "same scenario, same process, different export";
  golden_check("fault_pair.json", first);
}

TEST(GoldenRun, WanScenarioJsonPinned) {
  if constexpr (!sim::kObsEnabled) GTEST_SKIP() << "observability compiled out";
  const std::string first = run_wan_scenario();
  const std::string second = run_wan_scenario();
  ASSERT_EQ(first, second) << "same scenario, same process, different export";
  golden_check("wan_two_sites.json", first);
}

}  // namespace
}  // namespace remos::core
