// SharedPredictionCache: TTL semantics, hit accounting, invalidation, and
// the eviction-during-fit rules (fits run outside the lock, so the cache
// must handle invalidation and TTL expiry racing an in-flight fit).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "rps/shared_cache.hpp"

namespace remos::rps {
namespace {

struct Clock {
  double t = 0.0;
  std::function<double()> fn() {
    return [this] { return t; };
  }
};

Prediction make_prediction(double value) {
  Prediction p;
  p.mean = {value};
  p.variance = {1.0};
  return p;
}

TEST(SharedPredictionCache, MissThenHit) {
  Clock clock;
  SharedPredictionCache cache(10.0, clock.fn());
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return make_prediction(42.0);
  };
  const Prediction p1 = cache.get_or_compute("edge-1", compute);
  EXPECT_DOUBLE_EQ(p1.mean[0], 42.0);
  const Prediction p2 = cache.get_or_compute("edge-1", compute);
  EXPECT_DOUBLE_EQ(p2.mean[0], 42.0);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(SharedPredictionCache, DistinctKeysDistinctEntries) {
  Clock clock;
  SharedPredictionCache cache(10.0, clock.fn());
  cache.get_or_compute("a", [] { return make_prediction(1.0); });
  cache.get_or_compute("b", [] { return make_prediction(2.0); });
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_DOUBLE_EQ(cache.peek("a")->mean[0], 1.0);
  EXPECT_DOUBLE_EQ(cache.peek("b")->mean[0], 2.0);
}

TEST(SharedPredictionCache, TtlExpiryRecomputes) {
  Clock clock;
  SharedPredictionCache cache(5.0, clock.fn());
  int computes = 0;
  auto compute = [&] { return make_prediction(static_cast<double>(++computes)); };
  cache.get_or_compute("k", compute);
  clock.t = 4.9;
  EXPECT_DOUBLE_EQ(cache.get_or_compute("k", compute).mean[0], 1.0);  // fresh
  clock.t = 5.1;
  EXPECT_DOUBLE_EQ(cache.get_or_compute("k", compute).mean[0], 2.0);  // expired
  EXPECT_EQ(computes, 2);
}

TEST(SharedPredictionCache, PeekDoesNotCompute) {
  Clock clock;
  SharedPredictionCache cache(5.0, clock.fn());
  EXPECT_EQ(cache.peek("missing"), std::nullopt);
  cache.get_or_compute("k", [] { return make_prediction(7.0); });
  EXPECT_NE(cache.peek("k"), std::nullopt);
  clock.t = 6.0;
  EXPECT_EQ(cache.peek("k"), std::nullopt);  // stale entries hidden
}

TEST(SharedPredictionCache, InvalidateForcesRecompute) {
  Clock clock;
  SharedPredictionCache cache(100.0, clock.fn());
  int computes = 0;
  auto compute = [&] { return make_prediction(static_cast<double>(++computes)); };
  cache.get_or_compute("k", compute);
  cache.invalidate("k");
  EXPECT_DOUBLE_EQ(cache.get_or_compute("k", compute).mean[0], 2.0);
}

TEST(SharedPredictionCache, ClearDropsEverything) {
  Clock clock;
  SharedPredictionCache cache(100.0, clock.fn());
  cache.get_or_compute("a", [] { return make_prediction(1.0); });
  cache.get_or_compute("b", [] { return make_prediction(2.0); });
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.peek("a"), std::nullopt);
}

TEST(SharedPredictionCache, RequiresTimeSource) {
  EXPECT_THROW(SharedPredictionCache(1.0, nullptr), std::invalid_argument);
}

TEST(SharedPredictionCache, ManyConsumersOneFit) {
  // The sharing scenario the paper raises: N consumers of the same
  // resource within the TTL pay one fit.
  Clock clock;
  SharedPredictionCache cache(30.0, clock.fn());
  int computes = 0;
  for (int consumer = 0; consumer < 50; ++consumer) {
    cache.get_or_compute("popular-edge", [&] {
      ++computes;
      return make_prediction(3.0);
    });
    clock.t += 0.5;  // consumers arrive over 25 s, within one TTL
  }
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.hits(), 49u);
}

TEST(SharedPredictionCache, InvalidateDuringFitCancelsInstall) {
  // Fits run outside the lock, so an invalidation can land mid-fit. The
  // caller still gets its answer (it asked before the invalidation), but
  // the cache must not retain a prediction fitted on pre-invalidation
  // data. `compute` calls invalidate() itself — legal precisely because
  // the fit holds no lock — which models the collector noticing the
  // resource changed while the model was still fitting.
  Clock clock;
  SharedPredictionCache cache(100.0, clock.fn());
  int computes = 0;
  const Prediction p = cache.get_or_compute("k", [&] {
    ++computes;
    cache.invalidate("k");
    return make_prediction(1.0);
  });
  EXPECT_DOUBLE_EQ(p.mean[0], 1.0);  // the leader still gets its answer
  EXPECT_EQ(cache.peek("k"), std::nullopt) << "cancelled fit must not install";
  EXPECT_EQ(cache.size(), 0u);
  const Prediction p2 = cache.get_or_compute("k", [&] {
    ++computes;
    return make_prediction(2.0);
  });
  EXPECT_DOUBLE_EQ(p2.mean[0], 2.0);  // fresh fit on the changed data
  EXPECT_EQ(computes, 2);
}

TEST(SharedPredictionCache, ClearDuringFitCancelsInstall) {
  Clock clock;
  SharedPredictionCache cache(100.0, clock.fn());
  const Prediction p = cache.get_or_compute("k", [&] {
    cache.clear();
    return make_prediction(4.0);
  });
  EXPECT_DOUBLE_EQ(p.mean[0], 4.0);
  EXPECT_EQ(cache.peek("k"), std::nullopt);
}

TEST(SharedPredictionCache, EntryStampedAtFitStart) {
  // A fit observes the resource at the instant it starts, so the entry's
  // age is measured from the fit's start, not its completion. A fit that
  // outlives the TTL installs an entry that is already stale.
  Clock clock;
  SharedPredictionCache cache(5.0, clock.fn());
  int computes = 0;
  cache.get_or_compute("slow", [&] {
    ++computes;
    clock.t = 6.0;  // the fit itself takes longer than the TTL
    return make_prediction(1.0);
  });
  EXPECT_EQ(cache.peek("slow"), std::nullopt) << "entry must be stamped at fit start";
  cache.get_or_compute("slow", [&] {
    ++computes;
    return make_prediction(2.0);
  });
  EXPECT_EQ(computes, 2);
  EXPECT_NE(cache.peek("slow"), std::nullopt);  // second fit started at t=6
}

TEST(SharedPredictionCache, DistinctKeysFitInParallel) {
  // Two cold keys, two threads, and each fit blocks until the other has
  // started: completes only if fits for distinct keys genuinely overlap.
  // Under the pre-snapshot design (compute under the cache lock) this
  // test deadlocks instead of passing.
  Clock clock;
  SharedPredictionCache cache(100.0, clock.fn());
  std::atomic<int> started{0};
  auto fit = [&](double value) {
    started.fetch_add(1);
    while (started.load() < 2) std::this_thread::yield();
    return make_prediction(value);
  };
  Prediction pa;
  Prediction pb;
  std::thread ta([&] { pa = cache.get_or_compute("a", [&] { return fit(1.0); }); });
  std::thread tb([&] { pb = cache.get_or_compute("b", [&] { return fit(2.0); }); });
  ta.join();
  tb.join();
  EXPECT_DOUBLE_EQ(pa.mean[0], 1.0);
  EXPECT_DOUBLE_EQ(pb.mean[0], 2.0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

// ---- warm tier: spec-shape model templates ----

ModelTemplate make_template(double mu) {
  ModelTemplate t;
  t.spec = ModelSpec::ar(4);
  t.phi = {0.5, 0.2, 0.1, 0.05};
  t.mu = mu;
  t.sigma2 = 1.5;
  return t;
}

TEST(SharedPredictionCache, WarmTierStoreAndHit) {
  Clock clock;
  SharedPredictionCache cache(10.0, clock.fn());
  EXPECT_FALSE(cache.warm_template("AR(4)").has_value());
  EXPECT_EQ(cache.warm_misses(), 1u);
  cache.put_template("AR(4)", make_template(7.0));
  EXPECT_EQ(cache.templates_stored(), 1u);
  EXPECT_EQ(cache.warm_size(), 1u);
  const auto tmpl = cache.warm_template("AR(4)");
  ASSERT_TRUE(tmpl.has_value());
  EXPECT_DOUBLE_EQ(tmpl->mu, 7.0);
  EXPECT_EQ(tmpl->phi.size(), 4u);
  EXPECT_EQ(cache.warm_hits(), 1u);
  EXPECT_EQ(cache.warm_misses(), 1u);
  // Warm traffic never touches the hot-tier counters.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(SharedPredictionCache, WarmTierReplacesSameShape) {
  Clock clock;
  SharedPredictionCache cache(10.0, clock.fn());
  cache.put_template("AR(4)", make_template(1.0));
  cache.put_template("AR(4)", make_template(2.0));
  EXPECT_EQ(cache.templates_stored(), 2u);  // stores counted, not slots
  EXPECT_EQ(cache.warm_size(), 1u);
  EXPECT_DOUBLE_EQ(cache.warm_template("AR(4)")->mu, 2.0);
}

TEST(SharedPredictionCache, WarmTtlDefaultsToEightTimesHot) {
  Clock clock;
  SharedPredictionCache cache(5.0, clock.fn());  // warm TTL defaults to 40s
  cache.put_template("AR(4)", make_template(3.0));
  clock.t = 39.0;
  EXPECT_TRUE(cache.warm_template("AR(4)").has_value());
  clock.t = 41.0;
  EXPECT_FALSE(cache.warm_template("AR(4)").has_value());
  EXPECT_EQ(cache.warm_hits(), 1u);
  EXPECT_EQ(cache.warm_misses(), 1u);
}

TEST(SharedPredictionCache, WarmTtlOverride) {
  Clock clock;
  SharedPredictionCache cache(5.0, clock.fn(), /*warm_ttl_s=*/2.0);
  cache.put_template("AR(4)", make_template(3.0));
  clock.t = 1.5;
  EXPECT_TRUE(cache.warm_template("AR(4)").has_value());
  clock.t = 2.5;
  EXPECT_FALSE(cache.warm_template("AR(4)").has_value());
}

TEST(SharedPredictionCache, SeedAccountingIsExplicit) {
  Clock clock;
  SharedPredictionCache cache(10.0, clock.fn());
  EXPECT_EQ(cache.seeds(), 0u);
  cache.note_seeded();
  cache.note_seeded();
  EXPECT_EQ(cache.seeds(), 2u);
}

TEST(SharedPredictionCache, InvalidateKeepsWarmTierClearDropsBoth) {
  Clock clock;
  SharedPredictionCache cache(10.0, clock.fn());
  cache.get_or_compute("edge-1", [] { return make_prediction(1.0); });
  cache.put_template("AR(4)", make_template(4.0));
  // invalidate() is per-key staleness: the shared template outlives it.
  cache.invalidate("edge-1");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.warm_size(), 1u);
  EXPECT_TRUE(cache.warm_template("AR(4)").has_value());
  // clear() is the full reset: both tiers go.
  cache.get_or_compute("edge-1", [] { return make_prediction(1.0); });
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.warm_size(), 0u);
  EXPECT_FALSE(cache.warm_template("AR(4)").has_value());
}

}  // namespace
}  // namespace remos::rps
