// Modeler-side max-min allocation on measured virtual topologies.
#include <gtest/gtest.h>

#include <cstring>

#include "core/maxmin.hpp"

namespace remos::core {
namespace {

net::Ipv4Address ip(const char* text) { return *net::Ipv4Address::parse(text); }

/// a -- r1 -- r2 -- b, with a second pair c/d sharing the middle link.
struct Dumbbell {
  VirtualTopology topo;
  net::Ipv4Address a = ip("10.0.0.1"), b = ip("10.0.1.1");
  net::Ipv4Address c = ip("10.0.0.2"), d = ip("10.0.1.2");

  explicit Dumbbell(double middle_capacity = 10e6, double middle_util_ab = 0.0) {
    const auto na = topo.add_node(VNode{VNodeKind::kHost, "a", a});
    const auto nc = topo.add_node(VNode{VNodeKind::kHost, "c", c});
    const auto r1 = topo.add_node(VNode{VNodeKind::kRouter, "r1", ip("10.0.0.254")});
    const auto r2 = topo.add_node(VNode{VNodeKind::kRouter, "r2", ip("10.0.1.254")});
    const auto nb = topo.add_node(VNode{VNodeKind::kHost, "b", b});
    const auto nd = topo.add_node(VNode{VNodeKind::kHost, "d", d});
    topo.add_edge(VEdge{na, r1, 100e6, 0, 0, 0.001, "a-r1"});
    topo.add_edge(VEdge{nc, r1, 100e6, 0, 0, 0.001, "c-r1"});
    topo.add_edge(VEdge{r1, r2, middle_capacity, middle_util_ab, 0, 0.010, "mid"});
    topo.add_edge(VEdge{r2, nb, 100e6, 0, 0, 0.001, "r2-b"});
    topo.add_edge(VEdge{r2, nd, 100e6, 0, 0, 0.001, "r2-d"});
  }
};

TEST(MaxMin, SingleFlowGetsBottleneck) {
  Dumbbell t;
  const FlowInfo info = single_flow_info(t.topo, FlowRequest{.src = t.a, .dst = t.b});
  EXPECT_TRUE(info.routable());
  EXPECT_DOUBLE_EQ(info.available_bps, 10e6);
  EXPECT_DOUBLE_EQ(info.bottleneck_capacity_bps, 10e6);
  EXPECT_NEAR(info.latency_s, 0.012, 1e-12);
  EXPECT_EQ(info.path_edge_ids.size(), 3u);
}

TEST(MaxMin, MeasuredUtilizationReducesAvailability) {
  Dumbbell t(10e6, /*middle_util_ab=*/4e6);
  const FlowInfo fwd = single_flow_info(t.topo, FlowRequest{.src = t.a, .dst = t.b});
  EXPECT_DOUBLE_EQ(fwd.available_bps, 6e6);
  // Reverse direction is unloaded.
  const FlowInfo rev = single_flow_info(t.topo, FlowRequest{.src = t.b, .dst = t.a});
  EXPECT_DOUBLE_EQ(rev.available_bps, 10e6);
}

TEST(MaxMin, TwoFlowsShareBottleneck) {
  Dumbbell t;
  const auto result =
      max_min_allocate(t.topo, {FlowRequest{.src = t.a, .dst = t.b}, FlowRequest{.src = t.c, .dst = t.d}});
  EXPECT_DOUBLE_EQ(result.flows[0].available_bps, 5e6);
  EXPECT_DOUBLE_EQ(result.flows[1].available_bps, 5e6);
}

TEST(MaxMin, DemandCapFreesBandwidth) {
  Dumbbell t;
  const auto result =
      max_min_allocate(t.topo, {FlowRequest{.src = t.a, .dst = t.b, .demand_bps = 2e6}, FlowRequest{.src = t.c, .dst = t.d}});
  EXPECT_DOUBLE_EQ(result.flows[0].available_bps, 2e6);
  EXPECT_DOUBLE_EQ(result.flows[1].available_bps, 8e6);
}

TEST(MaxMin, UnknownEndpointUnroutable) {
  Dumbbell t;
  const FlowInfo info = single_flow_info(t.topo, FlowRequest{.src = t.a, .dst = ip("99.9.9.9")});
  EXPECT_FALSE(info.routable());
  EXPECT_DOUBLE_EQ(info.available_bps, 0.0);
}

TEST(MaxMin, MixedRoutableAndUnroutable) {
  Dumbbell t;
  const auto result = max_min_allocate(
      t.topo, {FlowRequest{.src = t.a, .dst = ip("99.9.9.9")}, FlowRequest{.src = t.c, .dst = t.d}});
  EXPECT_FALSE(result.flows[0].routable());
  EXPECT_DOUBLE_EQ(result.flows[1].available_bps, 10e6);
}

TEST(MaxMin, OppositeDirectionsIndependent) {
  Dumbbell t;
  const auto result =
      max_min_allocate(t.topo, {FlowRequest{.src = t.a, .dst = t.b}, FlowRequest{.src = t.d, .dst = t.c}});
  EXPECT_DOUBLE_EQ(result.flows[0].available_bps, 10e6);
  EXPECT_DOUBLE_EQ(result.flows[1].available_bps, 10e6);
}

TEST(MaxMin, SameSourceSharesAccessLink) {
  Dumbbell t;
  // Two flows from a: both cross a's 100 Mb access and the 10 Mb middle.
  const auto result =
      max_min_allocate(t.topo, {FlowRequest{.src = t.a, .dst = t.b}, FlowRequest{.src = t.a, .dst = t.d}});
  EXPECT_DOUBLE_EQ(result.flows[0].available_bps, 5e6);
  EXPECT_DOUBLE_EQ(result.flows[1].available_bps, 5e6);
}

TEST(MaxMin, ParkingLotFairness) {
  // r1 -- r2 -- r3 chain; long flow + two one-hop flows.
  VirtualTopology t;
  const auto s0 = t.add_node(VNode{VNodeKind::kHost, "s0", ip("1.0.0.1")});
  const auto s1 = t.add_node(VNode{VNodeKind::kHost, "s1", ip("1.0.0.2")});
  const auto e1 = t.add_node(VNode{VNodeKind::kHost, "e1", ip("1.0.0.3")});
  const auto e2 = t.add_node(VNode{VNodeKind::kHost, "e2", ip("1.0.0.4")});
  const auto r1 = t.add_node(VNode{VNodeKind::kRouter, "r1", ip("1.0.1.1")});
  const auto r2 = t.add_node(VNode{VNodeKind::kRouter, "r2", ip("1.0.1.2")});
  const auto r3 = t.add_node(VNode{VNodeKind::kRouter, "r3", ip("1.0.1.3")});
  t.add_edge(VEdge{s0, r1, 100e6, 0, 0, 0, "s0-r1"});
  t.add_edge(VEdge{s1, r2, 100e6, 0, 0, 0, "s1-r2"});
  t.add_edge(VEdge{e1, r2, 100e6, 0, 0, 0, "e1-r2"});
  t.add_edge(VEdge{e2, r3, 100e6, 0, 0, 0, "e2-r3"});
  t.add_edge(VEdge{r1, r2, 10e6, 0, 0, 0, "l1"});
  t.add_edge(VEdge{r2, r3, 10e6, 0, 0, 0, "l2"});
  const auto result = max_min_allocate(
      t, {FlowRequest{.src = ip("1.0.0.1"), .dst = ip("1.0.0.4")},   // long
          FlowRequest{.src = ip("1.0.0.1"), .dst = ip("1.0.0.3")},   // l1 only
          FlowRequest{.src = ip("1.0.0.2"), .dst = ip("1.0.0.4")}}); // l2 only
  EXPECT_DOUBLE_EQ(result.flows[0].available_bps, 5e6);
  EXPECT_DOUBLE_EQ(result.flows[1].available_bps, 5e6);
  EXPECT_DOUBLE_EQ(result.flows[2].available_bps, 5e6);
}

TEST(MaxMin, EmptyRequestList) {
  Dumbbell t;
  EXPECT_TRUE(max_min_allocate(t.topo, {}).flows.empty());
}

TEST(MaxMin, ScratchReuseIsBitIdenticalAndIndependent) {
  // The problem arenas are caller-owned (MaxMinScratch), not hidden
  // thread_local state: reusing one scratch across different problems must
  // not leak anything between solves, and distinct scratches must agree
  // bit-for-bit on the same problem.
  Dumbbell t;
  MaxMinScratch warm;
  // Dirty the arenas with a different problem shape first.
  (void)max_min_allocate(t.topo, {FlowRequest{.src = t.a, .dst = t.b}}, warm);
  const std::vector<FlowRequest> requests{FlowRequest{.src = t.a, .dst = t.b},
                                          FlowRequest{.src = t.c, .dst = t.d},
                                          FlowRequest{.src = t.b, .dst = t.a}};
  const MaxMinResult reused = max_min_allocate(t.topo, requests, warm);
  MaxMinScratch fresh;
  const MaxMinResult from_fresh = max_min_allocate(t.topo, requests, fresh);
  ASSERT_EQ(reused.flows.size(), from_fresh.flows.size());
  for (std::size_t i = 0; i < reused.flows.size(); ++i) {
    const double a = reused.flows[i].available_bps;
    const double b = from_fresh.flows[i].available_bps;
    EXPECT_EQ(0, std::memcmp(&a, &b, sizeof a)) << "flow " << i;
  }
  EXPECT_DOUBLE_EQ(reused.flows[0].available_bps, 5e6);
  EXPECT_DOUBLE_EQ(reused.flows[1].available_bps, 5e6);
  EXPECT_DOUBLE_EQ(reused.flows[2].available_bps, 10e6);
}

TEST(MaxMin, ZeroAvailableBandwidthEdge) {
  Dumbbell t(10e6, /*middle_util_ab=*/10e6);  // fully utilized
  const FlowInfo info = single_flow_info(t.topo, FlowRequest{.src = t.a, .dst = t.b});
  EXPECT_TRUE(info.routable());
  EXPECT_DOUBLE_EQ(info.available_bps, 0.0);
}

}  // namespace
}  // namespace remos::core
