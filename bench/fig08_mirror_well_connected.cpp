// Figure 8: mirrored-server selection among well-connected sites.
//
// Paper setup: client at CMU; 3 MB file replicated at Harvard (2.03 Mb/s
// average achieved), ISI (2.15), NWU (4.11), ETH (1.99); 108 trials; Remos
// picked the actually-fastest site 83% of the time.
#include "bench/mirror_common.hpp"

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  remos::bench::run_mirror_experiment(
      "Fig 8", "well-connected sites (paper: 83% correct over 108 trials)",
      {
          {"harvard", 3.0e6, 0.30},
          {"isi", 3.2e6, 0.32},
          {"nwu", 5.4e6, 0.40},
          {"eth", 2.9e6, 0.30},
      },
      /*trials=*/108, /*seed=*/8);
  return 0;
}
