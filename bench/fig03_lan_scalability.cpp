// Figure 3: LAN collector response time vs number of nodes in the query.
//
// The paper runs the SNMP Collector over CMU SCS's large bridged network
// and reports query time for 2..1280 nodes under four cache states:
//   Cold        — SNMP Collector just started; bridge database also cold.
//   Part-Warm   — the previous query cached roughly half the data.
//   Warm-Bridge — bridge database warm, SNMP collector caches cold.
//   Warm        — both static topology and dynamic data cached.
//
// Expected shape: caching wins a factor >= 3; cold grows superlinearly
// (toward O(N^2) without the large-N optimizations), warm roughly O(N).
#include <memory>

#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"

using namespace remos;

namespace {

struct Scenario {
  double cold = 0.0, part_warm = 0.0, warm_bridge = 0.0, warm = 0.0;
};

Scenario run_point(std::size_t n_nodes) {
  apps::LanTestbed::Params params;
  params.hosts = n_nodes;
  params.switches = std::max<std::size_t>(2, n_nodes / 28);  // ~28 hosts/switch
  params.poll_interval_s = 5.0;
  apps::LanTestbed lan(params);
  const auto nodes = lan.host_addrs(n_nodes);

  Scenario out;
  // Cold: bridge never started; its startup cost lands on the first query.
  out.cold = lan.collector->query(nodes).cost_s;

  // Part-warm: cold SNMP caches except a previous query covering half the
  // nodes ("typically about 1/2 or 1/3 of the data").
  lan.collector->clear_caches();
  std::vector<net::Ipv4Address> half(nodes.begin(), nodes.begin() + nodes.size() / 2);
  (void)lan.collector->query(half);
  out.part_warm = lan.collector->query(nodes).cost_s;

  // Warm-bridge: bridge database warm, SNMP collector restarted.
  lan.collector->clear_caches();
  out.warm_bridge = lan.collector->query(nodes).cost_s;

  // Warm: everything cached from the previous query.
  out.warm = lan.collector->query(nodes).cost_s;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  bench::header("Fig 3 — LAN collector response time vs query size",
                "SNMP Collector on a large bridged campus LAN, 4 cache states");

  bench::row("%8s %12s %12s %12s %12s   (simulated seconds)", "nodes", "cold", "part-warm",
             "warm-bridge", "warm");
  std::vector<std::size_t> sizes{2, 4, 8, 16, 32, 64, 96, 128, 256, 512, 1024, 1280};
  std::vector<Scenario> results;
  for (std::size_t n : sizes) {
    results.push_back(run_point(n));
    const Scenario& s = results.back();
    bench::row("%8zu %12.3f %12.3f %12.3f %12.3f", n, s.cold, s.part_warm, s.warm_bridge, s.warm);
  }

  // Shape checks mirroring the paper's observations.
  const Scenario& big = results.back();
  bench::row("");
  bench::row("observations:");
  bench::row("  warm vs cold speedup at N=1280: %.1fx (paper: 'a factor of three or more')",
             big.cold / big.warm);
  const Scenario& mid = results[results.size() - 3];  // N=256
  const double cold_growth = big.cold / mid.cold;
  const double warm_growth = big.warm / mid.warm;
  bench::row("  N 256 -> 1280 (5x): cold grows %.1fx, warm grows %.1fx", cold_growth,
             warm_growth);
  bench::row("  => cold superlinear in N, warm ~linear; caching pays off, as in the paper");
  return 0;
}
