// Scaling bench for the shared water-filling kernel (core/waterfill.hpp):
// fluid FlowEngine recomputes (one start+stop pair), Modeler
// max_min_allocate, and the raw kernel at 16k-1M flows sequential vs
// partitioned-parallel. Emits a JSON report with each size's ns/op plus the
// *deterministic* water-filling round and partition counts — both depend
// only on the problem, never on the machine, so CI pins them
// (bench/waterfill_rounds.json, compared by tools/check_waterfill.py in
// the ci/check.sh perf-smoke stage) while the timings are informational.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"
#include "core/maxmin.hpp"
#include "core/obs.hpp"
#include "core/waterfill.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace remos;

struct Result {
  std::string name;
  std::size_t size = 0;
  double ns_per_op = 0.0;
  std::uint64_t rounds = 0;      // deterministic per-op round count
  std::uint64_t partitions = 0;  // deterministic component count, 0 = n/a
  double baseline_ns = 0.0;      // reference measurement, 0 if not recorded
};

/// Pre-PR baselines (ns/op, this repo's reference container, default
/// audited preset, mean of 3 google-benchmark repetitions) measured at the
/// commit before the shared kernel landed. Kept here so the report shows
/// the speedup the kernel is expected to hold.
double baseline_ns_for(const std::string& name, std::size_t size) {
  if (name == "fluid_recompute_pair") {
    if (size == 4) return 4818.0;
    if (size == 16) return 11934.0;
    if (size == 64) return 36506.0;
  }
  if (name == "modeler_allocate" && size == 16) return 59384.0;
  return 0.0;
}

Result bench_fluid(std::size_t n_flows, double min_total_s) {
  apps::LanTestbed::Params p;
  p.hosts = 32;
  p.switches = 4;
  apps::LanTestbed lan(p);
  for (std::size_t i = 0; i + 1 < n_flows; ++i) {
    lan.flows->start(net::FlowSpec{.src = lan.hosts[i % 32], .dst = lan.hosts[(i + 7) % 32]});
  }
  const auto op = [&] {
    const net::FlowId f =
        lan.flows->start(net::FlowSpec{.src = lan.hosts[0], .dst = lan.hosts[9]});
    lan.flows->stop(f);
  };
  // One pair = two recomputes; the round delta is a pure function of the
  // flow population and the topology.
  const std::uint64_t before = lan.flows->waterfill_rounds_total();
  op();
  Result r;
  r.name = "fluid_recompute_pair";
  r.size = n_flows;
  r.rounds = lan.flows->waterfill_rounds_total() - before;
  r.ns_per_op = bench::time_per_iteration(op, min_total_s) * 1e9;
  r.baseline_ns = baseline_ns_for(r.name, r.size);
  return r;
}

Result bench_modeler(std::size_t n_requests, double min_total_s) {
  apps::LanTestbed::Params p;
  p.hosts = 32;
  p.switches = 4;
  apps::LanTestbed lan(p);
  const auto nodes = lan.host_addrs(32);
  const auto resp = lan.collector->query(nodes);
  std::vector<core::FlowRequest> requests;
  for (std::size_t i = 0; i < n_requests; ++i) {
    requests.push_back(
        core::FlowRequest{.src = nodes[(2 * i) % 32], .dst = nodes[(2 * i + 11) % 32]});
  }
  const auto op = [&] {
    auto result = core::max_min_allocate(resp.topology, requests);
    (void)result;
  };
  const std::uint64_t before = sim::metrics().counter("core.maxmin.iterations_total").value();
  op();
  Result r;
  r.name = "modeler_allocate";
  r.size = n_requests;
  r.rounds = sim::metrics().counter("core.maxmin.iterations_total").value() - before;
  r.ns_per_op = bench::time_per_iteration(op, min_total_s) * 1e9;
  r.baseline_ns = baseline_ns_for(r.name, r.size);
  return r;
}

/// Raw-kernel workload: clusters of ~32 flows over 8 private resources plus
/// one massively over-provisioned shared backbone resource every flow
/// crosses — the shape partitioning targets (independent congestion
/// neighborhoods under a fat core). Randomness comes from raw mt19937_64
/// draws only (no std distributions, whose mappings vary by stdlib), so the
/// problem — and its pinned round/partition counts — is identical on every
/// platform.
struct KernelProblem {
  std::vector<double> capacity;
  std::vector<std::size_t> offsets;
  std::vector<std::uint32_t> resources;
  std::vector<double> demand;
};

KernelProblem make_clustered_problem(std::size_t n_flows) {
  std::mt19937_64 rng(0x5eed0000ULL + n_flows);
  const auto u01 = [&rng] { return static_cast<double>(rng() >> 11) * 0x1.0p-53; };
  constexpr std::size_t kFlowsPerCluster = 32;
  constexpr std::size_t kResPerCluster = 8;
  KernelProblem p;
  p.offsets.reserve(n_flows + 1);
  p.offsets.push_back(0);
  p.resources.reserve(n_flows * 3);
  p.demand.reserve(n_flows);
  p.capacity.push_back(0.0);  // backbone (key 0), patched below
  while (p.demand.size() < n_flows) {
    const auto base = static_cast<std::uint32_t>(p.capacity.size());
    for (std::size_t r = 0; r < kResPerCluster; ++r) p.capacity.push_back(0.5 + 99.5 * u01());
    const std::size_t nf = std::min(kFlowsPerCluster, n_flows - p.demand.size());
    for (std::size_t f = 0; f < nf; ++f) {
      const std::size_t deg = 1 + rng() % 3;
      for (std::size_t k = 0; k < deg; ++k) {
        p.resources.push_back(base + static_cast<std::uint32_t>(rng() % kResPerCluster));
      }
      p.resources.push_back(0);  // the shared backbone
      p.offsets.push_back(p.resources.size());
      p.demand.push_back(u01() < 0.3 ? std::numeric_limits<double>::infinity()
                                     : 0.1 + 49.9 * u01());
    }
  }
  // Far above the sum of every flow's min crossed capacity: provably
  // uncuttable load never reaches it, so the partitioner cuts it.
  p.capacity[0] = 100.0 * static_cast<double>(n_flows) + 1000.0;
  return p;
}

/// Two rows per size: the monolithic sequential kernel and the partitioned
/// solve on a thread pool. The parallel row's baseline is the sequential
/// measurement, so its speedup column is the multi-threaded speedup. Every
/// run re-verifies the determinism contract (DESIGN.md "Parallel
/// partitioned solve"): the pool solve must be bit-identical to the
/// partitioned solve without a pool, and partitioning itself must agree
/// with the monolithic kernel within the solver's 1e-9 freeze tolerance
/// (the monolithic monotone-level clamp can couple independent components
/// by an ulp, so exact cross-decomposition identity is not promised).
void bench_kernel(std::size_t n_flows, double min_total_s, std::vector<Result>& out) {
  const KernelProblem p = make_clustered_problem(n_flows);
  core::WaterfillOptions seq_opt;
  seq_opt.monotone_level = true;
  core::WaterfillOptions part_opt = seq_opt;
  part_opt.partition_min_flows = 1;
  sim::ThreadPool pool;
  core::WaterfillOptions par_opt = part_opt;
  par_opt.pool = &pool;

  core::WaterfillSolver seq_solver;
  core::WaterfillSolver part_solver;
  core::WaterfillSolver par_solver;
  std::vector<double> seq_rates(n_flows, 0.0);
  std::vector<double> part_rates(n_flows, 0.0);
  std::vector<double> par_rates(n_flows, 0.0);
  const core::WaterfillStats seq_stats =
      seq_solver.solve(p.capacity, p.offsets, p.resources, p.demand, seq_rates, seq_opt);
  (void)part_solver.solve(p.capacity, p.offsets, p.resources, p.demand, part_rates, part_opt);
  const core::WaterfillStats par_stats =
      par_solver.solve(p.capacity, p.offsets, p.resources, p.demand, par_rates, par_opt);
  if (std::memcmp(part_rates.data(), par_rates.data(), n_flows * sizeof(double)) != 0) {
    std::fprintf(stderr, "micro_waterfill: pool solve diverged from partitioned at %zu flows\n",
                 n_flows);
    std::exit(1);
  }
  for (std::size_t f = 0; f < n_flows; ++f) {
    if (std::fabs(seq_rates[f] - par_rates[f]) > 1e-9 * (1.0 + std::fabs(seq_rates[f]))) {
      std::fprintf(stderr,
                   "micro_waterfill: partitioning moved flow %zu beyond the freeze tolerance "
                   "at %zu flows (%.17g vs %.17g)\n",
                   f, n_flows, seq_rates[f], par_rates[f]);
      std::exit(1);
    }
  }

  Result seq;
  seq.name = "kernel_solve_seq";
  seq.size = n_flows;
  seq.rounds = seq_stats.rounds;
  seq.partitions = seq_stats.partitions;
  seq.ns_per_op = bench::time_per_iteration(
                      [&] {
                        (void)seq_solver.solve(p.capacity, p.offsets, p.resources, p.demand,
                                               seq_rates, seq_opt);
                      },
                      min_total_s) *
                  1e9;
  out.push_back(seq);

  Result par;
  par.name = "kernel_solve_par";
  par.size = n_flows;
  par.rounds = par_stats.rounds;
  par.partitions = par_stats.partitions;
  par.ns_per_op = bench::time_per_iteration(
                      [&] {
                        (void)par_solver.solve(p.capacity, p.offsets, p.resources, p.demand,
                                               par_rates, par_opt);
                      },
                      min_total_s) *
                  1e9;
  par.baseline_ns = seq.ns_per_op;
  out.push_back(par);
}

void write_json(const std::string& path, const std::vector<Result>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_waterfill: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"size\": %zu, \"ns_per_op\": %.1f, \"rounds\": %llu",
                 r.name.c_str(), r.size, r.ns_per_op,
                 static_cast<unsigned long long>(r.rounds));
    if (r.partitions > 0) {
      std::fprintf(f, ", \"partitions\": %llu", static_cast<unsigned long long>(r.partitions));
    }
    // Rows with no recorded reference omit the baseline/speedup keys
    // entirely: a 0.0 placeholder used to read as "speedup: 0.00" and
    // check_waterfill.py now rejects it.
    if (r.baseline_ns > 0.0) {
      std::fprintf(f, ", \"baseline_ns_per_op\": %.1f, \"speedup\": %.2f", r.baseline_ns,
                   r.baseline_ns / r.ns_per_op);
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  std::string out = "BENCH_waterfill.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    }
  }

  // Smoke mode keeps the deterministic round counts (they do not depend on
  // timing budget) but trims sizes and measurement time for CI latency.
  const double min_total_s = smoke ? 0.01 : 0.05;
  const std::vector<std::size_t> fluid_sizes =
      smoke ? std::vector<std::size_t>{4, 64} : std::vector<std::size_t>{4, 16, 64, 256, 1024};
  const std::vector<std::size_t> modeler_sizes =
      smoke ? std::vector<std::size_t>{16} : std::vector<std::size_t>{4, 16, 64};
  const std::vector<std::size_t> kernel_sizes =
      smoke ? std::vector<std::size_t>{16384}
            : std::vector<std::size_t>{16384, 65536, 262144, 1048576};

  std::vector<Result> results;
  for (const std::size_t n : fluid_sizes) results.push_back(bench_fluid(n, min_total_s));
  for (const std::size_t n : modeler_sizes) results.push_back(bench_modeler(n, min_total_s));
  for (const std::size_t n : kernel_sizes) bench_kernel(n, min_total_s, results);

  remos::bench::header("micro_waterfill: shared water-filling kernel scaling",
                       "DESIGN.md \"Performance\"");
  remos::bench::row("%-22s %8s %12s %8s %6s %12s %8s", "benchmark", "flows", "ns/op", "rounds",
                    "parts", "baseline", "speedup");
  for (const Result& r : results) {
    char parts[24];
    if (r.partitions > 0) {
      std::snprintf(parts, sizeof parts, "%llu", static_cast<unsigned long long>(r.partitions));
    } else {
      std::snprintf(parts, sizeof parts, "-");
    }
    if (r.baseline_ns > 0.0) {
      remos::bench::row("%-22s %8zu %12.0f %8llu %6s %12.0f %7.2fx", r.name.c_str(), r.size,
                        r.ns_per_op, static_cast<unsigned long long>(r.rounds), parts,
                        r.baseline_ns, r.baseline_ns / r.ns_per_op);
    } else {
      remos::bench::row("%-22s %8zu %12.0f %8llu %6s %12s %8s", r.name.c_str(), r.size,
                        r.ns_per_op, static_cast<unsigned long long>(r.rounds), parts, "-", "-");
    }
  }
  write_json(out, results);
  std::printf("report: %s\n", out.c_str());
  return 0;
}
