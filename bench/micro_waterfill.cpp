// Scaling bench for the shared water-filling kernel (core/waterfill.hpp):
// fluid FlowEngine recomputes (one start+stop pair) and Modeler
// max_min_allocate at several flow counts. Emits a JSON report with each
// size's ns/op plus the *deterministic* water-filling round count — rounds
// depend only on the problem, never on the machine, so CI pins them
// (bench/waterfill_rounds.json, compared by tools/check_waterfill.py in
// the ci/check.sh perf-smoke stage) while the timings are informational.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"
#include "core/maxmin.hpp"
#include "core/obs.hpp"

namespace {

using namespace remos;

struct Result {
  std::string name;
  std::size_t size = 0;
  double ns_per_op = 0.0;
  std::uint64_t rounds = 0;      // deterministic per-op round count
  double baseline_ns = 0.0;      // pre-kernel measurement, 0 if not recorded
};

/// Pre-PR baselines (ns/op, this repo's reference container, default
/// audited preset, mean of 3 google-benchmark repetitions) measured at the
/// commit before the shared kernel landed. Kept here so the report shows
/// the speedup the kernel is expected to hold.
double baseline_ns_for(const std::string& name, std::size_t size) {
  if (name == "fluid_recompute_pair") {
    if (size == 4) return 4818.0;
    if (size == 16) return 11934.0;
    if (size == 64) return 36506.0;
  }
  if (name == "modeler_allocate" && size == 16) return 59384.0;
  return 0.0;
}

Result bench_fluid(std::size_t n_flows, double min_total_s) {
  apps::LanTestbed::Params p;
  p.hosts = 32;
  p.switches = 4;
  apps::LanTestbed lan(p);
  for (std::size_t i = 0; i + 1 < n_flows; ++i) {
    lan.flows->start(net::FlowSpec{.src = lan.hosts[i % 32], .dst = lan.hosts[(i + 7) % 32]});
  }
  const auto op = [&] {
    const net::FlowId f =
        lan.flows->start(net::FlowSpec{.src = lan.hosts[0], .dst = lan.hosts[9]});
    lan.flows->stop(f);
  };
  // One pair = two recomputes; the round delta is a pure function of the
  // flow population and the topology.
  const std::uint64_t before = lan.flows->waterfill_rounds_total();
  op();
  Result r;
  r.name = "fluid_recompute_pair";
  r.size = n_flows;
  r.rounds = lan.flows->waterfill_rounds_total() - before;
  r.ns_per_op = bench::time_per_iteration(op, min_total_s) * 1e9;
  r.baseline_ns = baseline_ns_for(r.name, r.size);
  return r;
}

Result bench_modeler(std::size_t n_requests, double min_total_s) {
  apps::LanTestbed::Params p;
  p.hosts = 32;
  p.switches = 4;
  apps::LanTestbed lan(p);
  const auto nodes = lan.host_addrs(32);
  const auto resp = lan.collector->query(nodes);
  std::vector<core::FlowRequest> requests;
  for (std::size_t i = 0; i < n_requests; ++i) {
    requests.push_back(
        core::FlowRequest{.src = nodes[(2 * i) % 32], .dst = nodes[(2 * i + 11) % 32]});
  }
  const auto op = [&] {
    auto result = core::max_min_allocate(resp.topology, requests);
    (void)result;
  };
  const std::uint64_t before = sim::metrics().counter("core.maxmin.iterations_total").value();
  op();
  Result r;
  r.name = "modeler_allocate";
  r.size = n_requests;
  r.rounds = sim::metrics().counter("core.maxmin.iterations_total").value() - before;
  r.ns_per_op = bench::time_per_iteration(op, min_total_s) * 1e9;
  r.baseline_ns = baseline_ns_for(r.name, r.size);
  return r;
}

void write_json(const std::string& path, const std::vector<Result>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_waterfill: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"size\": %zu, \"ns_per_op\": %.1f, "
                 "\"rounds\": %llu, \"baseline_ns_per_op\": %.1f, \"speedup\": %.2f}%s\n",
                 r.name.c_str(), r.size, r.ns_per_op,
                 static_cast<unsigned long long>(r.rounds), r.baseline_ns,
                 r.baseline_ns > 0.0 ? r.baseline_ns / r.ns_per_op : 0.0,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  std::string out = "BENCH_waterfill.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    }
  }

  // Smoke mode keeps the deterministic round counts (they do not depend on
  // timing budget) but trims sizes and measurement time for CI latency.
  const double min_total_s = smoke ? 0.01 : 0.05;
  const std::vector<std::size_t> fluid_sizes =
      smoke ? std::vector<std::size_t>{4, 64} : std::vector<std::size_t>{4, 16, 64, 256, 1024};
  const std::vector<std::size_t> modeler_sizes =
      smoke ? std::vector<std::size_t>{16} : std::vector<std::size_t>{4, 16, 64};

  std::vector<Result> results;
  for (const std::size_t n : fluid_sizes) results.push_back(bench_fluid(n, min_total_s));
  for (const std::size_t n : modeler_sizes) results.push_back(bench_modeler(n, min_total_s));

  remos::bench::header("micro_waterfill: shared water-filling kernel scaling",
                       "DESIGN.md \"Performance\"");
  remos::bench::row("%-22s %6s %12s %8s %12s %8s", "benchmark", "flows", "ns/op", "rounds",
                    "baseline", "speedup");
  for (const Result& r : results) {
    if (r.baseline_ns > 0.0) {
      remos::bench::row("%-22s %6zu %12.0f %8llu %12.0f %7.2fx", r.name.c_str(), r.size,
                        r.ns_per_op, static_cast<unsigned long long>(r.rounds), r.baseline_ns,
                        r.baseline_ns / r.ns_per_op);
    } else {
      remos::bench::row("%-22s %6zu %12.0f %8llu %12s %8s", r.name.c_str(), r.size, r.ns_per_op,
                        static_cast<unsigned long long>(r.rounds), "-", "-");
    }
  }
  write_json(out, results);
  std::printf("report: %s\n", out.c_str());
  return 0;
}
