// Baseline comparison: RPS's refit-on-error single model vs the Network
// Weather Service's multi-expert switching.
//
// §3.3: "In RPS, this continuous testing (done by the evaluator) is used to
// decide when the model must be refit. In contrast, the Network Weather
// Service uses similar feedback to decide which of a set of models to use
// next in a variant of the multiple expert machine learning approach."
// This harness puts both feedback designs on the same signals.
#include <cmath>

#include "bench/bench_util.hpp"
#include "net/hostload.hpp"
#include "rps/multi_expert.hpp"
#include "rps/predictor.hpp"

using namespace remos;

namespace {

struct Outcome {
  double mse = 0.0;
  double us_per_prediction = 0.0;
};

template <typename Predictor>
Outcome evaluate(Predictor& predictor, const std::vector<double>& test) {
  double sse = 0.0;
  double pred = test.front();
  const double wall = bench::time_real([&] {
    for (double x : test) {
      sse += (x - pred) * (x - pred);
      const auto p = predictor.push(x);
      pred = p.mean.empty() ? x : p.mean[0];
    }
  });
  return Outcome{sse / static_cast<double>(test.size()),
                 wall / static_cast<double>(test.size()) * 1e6};
}

void compare_on(const char* label, const std::vector<double>& series) {
  const std::vector<double> train(series.begin(), series.begin() + 3000);
  const std::vector<double> test(series.begin() + 3000, series.end());

  rps::StreamingPredictor rps(rps::ModelSpec::ar(16));
  rps.prime(train);
  rps::MultiExpertPredictor nws({rps::ModelSpec::mean(), rps::ModelSpec::last(),
                                 rps::ModelSpec::window_avg(16), rps::ModelSpec::ar(8)});
  nws.prime(train);
  rps::StreamingConfig naive_cfg;
  naive_cfg.refit_on_error = false;
  rps::StreamingPredictor naive(rps::ModelSpec::last(), naive_cfg);
  naive.prime(train);

  const Outcome o_rps = evaluate(rps, test);
  const Outcome o_nws = evaluate(nws, test);
  const Outcome o_naive = evaluate(naive, test);

  bench::row("%-18s %14.5f %14.5f %14.5f", label, o_rps.mse, o_nws.mse, o_naive.mse);
  bench::row("%-18s %12.2f us %12.2f us %12.2f us", "  cost/prediction", o_rps.us_per_prediction,
             o_nws.us_per_prediction, o_naive.us_per_prediction);
  bench::row("%-18s %14zu %14llu %14s", "  refits/switches", rps.refit_count(),
             static_cast<unsigned long long>(nws.switches()), "-");
}

}  // namespace

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  bench::header("Baseline — RPS refit-on-error vs NWS multi-expert switching",
                "one-step MSE + real CPU per prediction, 3000-sample fit / 1000-sample test");
  bench::row("%-18s %14s %14s %14s", "signal", "RPS AR(16)", "NWS panel", "LAST");

  sim::Rng rng(17);
  compare_on("host load", net::generate_host_load(4000, rng));

  // Bandwidth-like signal: slow on/off level shifts plus noise (the kind
  // of series the collectors' link histories hold).
  std::vector<double> bw;
  double level = 5.0;
  sim::Rng rng2(18);
  for (int i = 0; i < 4000; ++i) {
    if (rng2.chance(0.01)) level = rng2.uniform(1.0, 9.0);
    bw.push_back(level + rng2.normal(0.0, 0.4));
  }
  compare_on("link bandwidth", bw);

  bench::row("");
  bench::row("both feedback designs land within a few percent of each other and");
  bench::row("beat naive LAST where the signal has structure; RPS pays a bigger");
  bench::row("per-prediction cost for its higher-order model, NWS pays in model-");
  bench::row("switch churn. Consistent with the paper treating them as two valid");
  bench::row("answers to the same feedback problem.");
  return 0;
}
