// Figure 6: CPU usage of the RPS-based host load prediction system as a
// function of measurement rate, using the appropriate AR(16) model.
//
// The paper's system (on a 500 MHz Alpha) has 1-2 ms measurement-to-
// prediction latency, runs past 700 Hz, and saturates the CPU near 1 kHz.
// Absolute numbers shift with the host CPU; the shape — CPU usage linear in
// rate until saturation — is the reproduced result.
#include <vector>

#include "bench/bench_util.hpp"
#include "net/hostload.hpp"
#include "rps/predictor.hpp"

using namespace remos;

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  bench::header("Fig 6 — CPU usage of RPS host-load prediction vs measurement rate",
                "streaming AR(16), 30-step horizon; fraction of one core consumed");

  // Real measurement: seconds of CPU per push (step + 30-step predict).
  sim::Rng rng(7);
  const std::vector<double> prime = net::generate_host_load(600, rng);
  const std::vector<double> stream = net::generate_host_load(4096, rng);

  rps::StreamingConfig cfg;
  cfg.horizon = 30;
  cfg.refit_on_error = false;  // measure the steady-state step cost
  rps::StreamingPredictor predictor(rps::ModelSpec::ar(16), cfg);
  predictor.prime(prime);

  std::size_t cursor = 0;
  const double per_push_s = bench::time_per_iteration([&] {
    (void)predictor.push(stream[cursor++ & 4095]);
  });

  bench::row("measured cost per measurement->prediction: %.1f us", per_push_s * 1e6);
  bench::row("");
  bench::row("%14s %16s %12s", "rate (Hz)", "CPU usage (%)", "saturated");
  double saturation_hz = 0.0;
  // The paper's sweep tops out at 1 kHz on a 500 MHz Alpha; this host is
  // orders of magnitude faster, so extend the sweep until the knee shows.
  for (double rate : {1.0, 10.0, 100.0, 1000.0, 1e4, 1e5, 3e5, 1e6, 2e6, 5e6}) {
    const double cpu = per_push_s * rate;
    if (saturation_hz == 0.0 && cpu >= 1.0) saturation_hz = 1.0 / per_push_s;
    bench::row("%14.0f %16.3f %12s", rate, std::min(cpu, 1.0) * 100.0, cpu >= 1.0 ? "yes" : "");
  }
  bench::row("");
  bench::row("saturation rate on this host: %.0f Hz (paper: ~1 kHz on a 500 MHz Alpha;",
             saturation_hz > 0 ? saturation_hz : 1.0 / per_push_s);
  bench::row("at the normal 1 Hz rate CPU usage is negligible: %.5f%%)", per_push_s * 100.0);
  return 0;
}
