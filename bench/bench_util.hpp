// Shared helpers for the figure-reproduction benches: aligned table
// printing, wall-clock timing, and the common command-line surface
// (--metrics-out, --table-out) so every bench gains observability export
// without per-bench argument plumbing.
// remos-lint: allow-file(wallclock)
#pragma once

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "core/obs.hpp"

namespace remos::bench {

namespace detail {
/// Optional tee target for header()/row() output (see BenchMain --table-out).
inline std::FILE*& table_file() {
  static std::FILE* f = nullptr;
  return f;
}
}  // namespace detail

inline void header(const std::string& title, const std::string& paper_ref) {
  const char* bar = "================================================================";
  std::printf("\n%s\n%s\nreproduces: %s\n%s\n", bar, title.c_str(), paper_ref.c_str(), bar);
  if (std::FILE* f = detail::table_file()) {
    std::fprintf(f, "\n%s\n%s\nreproduces: %s\n%s\n", bar, title.c_str(), paper_ref.c_str(), bar);
  }
}

inline void row(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  std::printf("%s\n", buf);
  if (std::FILE* f = detail::table_file()) std::fprintf(f, "%s\n", buf);
}

/// Wall-clock seconds consumed by `fn()`.
template <typename F>
double time_real(F&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Wall-clock seconds per iteration, amortized over enough repetitions to
/// exceed `min_total_s` of measurement.
template <typename F>
double time_per_iteration(F&& fn, double min_total_s = 0.05, int min_reps = 3) {
  int reps = min_reps;
  for (;;) {
    const double total = time_real([&] {
      for (int i = 0; i < reps; ++i) fn();
    });
    if (total >= min_total_s || reps > (1 << 22)) {
      return total / reps;
    }
    reps *= 4;
  }
}

/// Common bench entry point, declared first in every main():
///
///   int main(int argc, char** argv) {
///     remos::bench::BenchMain bench(argc, argv);
///     ...
///   }
///
/// Flags (unknown arguments are ignored so google-benchmark flags pass
/// through):
///   --metrics-out <path>  write the observability export on exit
///                         (.prom -> Prometheus text, else JSON)
///   --table-out <path>    tee header()/row() table output to a file
///
/// On destruction (i.e. after the bench body ran) the export is written, so
/// a figure run leaves its metric trail next to its table.
class BenchMain {
 public:
  /// Consumed flags are removed from argc/argv so whatever remains can be
  /// handed to another parser (benchmark::Initialize in the
  /// google-benchmark benches).
  BenchMain(int& argc, char** argv) {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--metrics-out" && i + 1 < argc) {
        metrics_path_ = argv[++i];
      } else if (arg == "--table-out" && i + 1 < argc) {
        detail::table_file() = std::fopen(argv[++i], "w");
        if (detail::table_file() == nullptr) {
          std::fprintf(stderr, "bench: cannot open --table-out %s\n", argv[i]);
        }
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }

  BenchMain(const BenchMain&) = delete;
  BenchMain& operator=(const BenchMain&) = delete;

  ~BenchMain() {
    if (!metrics_path_.empty()) {
      if (core::obs::write_export_file(metrics_path_)) {
        std::printf("metrics: %s\n", metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "bench: cannot write --metrics-out %s\n", metrics_path_.c_str());
      }
    }
    if (std::FILE* f = detail::table_file()) {
      std::fclose(f);
      detail::table_file() = nullptr;
    }
  }

 private:
  std::string metrics_path_;
};

}  // namespace remos::bench
