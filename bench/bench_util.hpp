// Shared helpers for the figure-reproduction benches: aligned table
// printing and wall-clock timing.
#pragma once

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace remos::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Wall-clock seconds consumed by `fn()`.
template <typename F>
double time_real(F&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Wall-clock seconds per iteration, amortized over enough repetitions to
/// exceed `min_total_s` of measurement.
template <typename F>
double time_per_iteration(F&& fn, double min_total_s = 0.05, int min_reps = 3) {
  int reps = min_reps;
  for (;;) {
    const double total = time_real([&] {
      for (int i = 0; i < reps; ++i) fn();
    });
    if (total >= min_total_s || reps > (1 << 22)) {
      return total / reps;
    }
    reps *= 4;
  }
}

}  // namespace remos::bench
