// Shared harness for the SNMP Collector accuracy experiments (Figs 4-5 and
// the sampling-interval ablation): the paper's two-router testbed with
// Netperf-style TCP bursts, comparing ground truth against what Remos
// observes from octet-counter differencing.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"
#include "core/snmp_collector.hpp"
#include "net/traffic.hpp"

namespace remos::bench {

struct AccuracyResult {
  double mean_abs_error_bps = 0.0;
  double correlation = 0.0;
  /// Correlation after shifting the Remos series back by one sampling
  /// interval — counter differencing reports the *previous* interval's
  /// average, so disagreement is dominated by this lag.
  double lag_corrected_correlation = 0.0;
  std::uint64_t snmp_requests = 0;
};

/// Build `a - r1 - r2 - b` (100 Mb/s links), run the burst schedule, and
/// compare the collector's observed utilization with ground truth.
/// When `print` is false only the metrics are computed (ablation use).
inline AccuracyResult run_accuracy_experiment(double interval_s, const std::string& figure,
                                              std::uint64_t seed, bool print = true) {
  net::Network net("testbed");
  sim::Engine engine;
  const auto a = net.add_host("a");
  const auto r1 = net.add_router("r1");
  const auto r2 = net.add_router("r2");
  const auto b = net.add_host("b");
  net.connect(a, r1, 100e6);
  net.connect(r1, r2, 100e6);
  net.connect(r2, b, 100e6);
  net.finalize();
  auto flows = std::make_unique<net::FlowEngine>(engine, net);
  snmp::AgentRegistry agents(net, sim::Rng(seed));
  agents.set_before_read([&] { flows->sync(); });

  core::SnmpCollectorConfig cfg;
  cfg.name = "testbed-snmp";
  cfg.poll_interval_s = interval_s;
  cfg.domain = {*net::Ipv4Prefix::parse("10.0.0.0/8")};
  for (const net::Segment& seg : net.segments()) {
    net::Ipv4Address gw{};
    for (auto [node, ifidx] : seg.attachments) {
      (void)ifidx;
      if (net.node(node).kind == net::NodeKind::kRouter) {
        gw = net.node(node).primary_address();
        break;
      }
    }
    cfg.subnets.push_back({seg.prefix, gw, nullptr, false, 0.0});
  }
  core::SnmpCollector collector(engine, agents, std::move(cfg));

  // Discover the path (starts monitoring), then find the inter-router edge.
  const auto resp =
      collector.query({net.node(a).primary_address(), net.node(b).primary_address()});
  std::string backbone_id;
  for (const core::VEdge& e : resp.topology.edges()) {
    if (e.id.starts_with("l3:")) backbone_id = e.id;
  }

  // Netperf burst schedule: varying lengths and offered loads over ~180 s
  // (mirrors Fig 4's on/off bursts up to ~90 Mb/s).
  std::vector<net::NetperfBurst> bursts{
      {.start = 10.0, .duration_s = 28.0, .demand_bps = 90e6},
      {.start = 48.0, .duration_s = 14.0, .demand_bps = 55e6},
      {.start = 70.0, .duration_s = 22.0, .demand_bps = 75e6},
      {.start = 100.0, .duration_s = 8.0, .demand_bps = 95e6},
      {.start = 114.0, .duration_s = 26.0, .demand_bps = 40e6},
      {.start = 148.0, .duration_s = 30.0, .demand_bps = 80e6},
  };
  net::NetperfSession session(engine, *flows, a, b, bursts, 0.25);
  session.run();
  engine.run_until(185.0);

  const sim::MeasurementHistory* remos_hist = collector.history(backbone_id);
  const auto& truth = session.rate_history();

  // Sample both series on a 1-second grid.
  auto remos_at = [&](double t) {
    double v = 0.0;
    if (remos_hist != nullptr) {
      for (std::size_t i = 0; i < remos_hist->size(); ++i) {
        if (remos_hist->at(i).time <= t) v = remos_hist->at(i).value;
      }
    }
    return v;
  };
  std::vector<double> gt, rm;
  for (int t = 0; t < 185; ++t) {
    gt.push_back(truth.mean_over(t, t + 0.99));
    rm.push_back(remos_at(t));
  }

  AccuracyResult out;
  out.snmp_requests = collector.snmp_request_count();
  double sum_abs = 0.0, mg = 0.0, mr = 0.0;
  for (std::size_t i = 0; i < gt.size(); ++i) {
    sum_abs += std::fabs(gt[i] - rm[i]);
    mg += gt[i];
    mr += rm[i];
  }
  out.mean_abs_error_bps = sum_abs / static_cast<double>(gt.size());
  mg /= static_cast<double>(gt.size());
  mr /= static_cast<double>(gt.size());
  auto correlation_of = [](const std::vector<double>& x, const std::vector<double>& y) {
    const std::size_t n = std::min(x.size(), y.size());
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mx += x[i];
      my += y[i];
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    double cov = 0.0, vx = 0.0, vy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      cov += (x[i] - mx) * (y[i] - my);
      vx += (x[i] - mx) * (x[i] - mx);
      vy += (y[i] - my) * (y[i] - my);
    }
    return (vx > 0 && vy > 0) ? cov / std::sqrt(vx * vy) : 0.0;
  };
  out.correlation = correlation_of(gt, rm);
  // Shift the Remos series back by one sampling interval.
  const auto lag = static_cast<std::size_t>(std::lround(interval_s));
  std::vector<double> rm_shifted(rm.begin() + static_cast<std::ptrdiff_t>(std::min(lag, rm.size())),
                                 rm.end());
  std::vector<double> gt_trimmed(gt.begin(), gt.begin() + static_cast<std::ptrdiff_t>(rm_shifted.size()));
  out.lag_corrected_correlation = correlation_of(gt_trimmed, rm_shifted);

  if (print) {
    char interval_text[32];
    std::snprintf(interval_text, sizeof interval_text, "%g", interval_s);
    header(figure + " — SNMP Collector accuracy, " + interval_text + " s sampling interval",
           "Netperf bursts vs Remos-observed bandwidth on the two-router testbed");
    row("%6s %18s %18s   (Mb/s)", "t[s]", "netperf", "remos");
    for (int t = 0; t < 185; t += 5) {
      row("%6d %18.2f %18.2f", t, gt[static_cast<std::size_t>(t)] / 1e6,
          rm[static_cast<std::size_t>(t)] / 1e6);
    }
    row("");
    row("series shape  (netperf): %s", sim::ascii_sparkline(gt).c_str());
    row("series shape  (remos)  : %s", sim::ascii_sparkline(rm).c_str());
    row("");
    row("mean |error|: %.2f Mb/s   correlation: %.3f   lag-corrected: %.3f   snmp requests: %llu",
        out.mean_abs_error_bps / 1e6, out.correlation, out.lag_corrected_correlation,
        static_cast<unsigned long long>(out.snmp_requests));
    row("(paper: 'a fairly good match'; residual disagreement is the one-interval");
    row("counter-differencing lag, which the lag-corrected correlation removes)");
  }
  return out;
}

}  // namespace remos::bench
