// Ablation: threaded (parallel-lane) SNMP vs serial round trips.
//
// §3.1.1: "The SNMP Collector is implemented with Java threads, so it is
// capable of monitoring a number of routers and responding to many queries
// simultaneously." Parallel lanes charge max(lane) instead of sum(lanes);
// the win grows with the number of distinct devices polled.
#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"

using namespace remos;

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  bench::header("Ablation — parallel vs serial SNMP monitoring",
                "one monitoring pass over all discovered interfaces (simulated seconds)");
  bench::row("%10s %10s %14s %14s %10s", "hosts", "devices", "serial", "parallel", "speedup");
  for (std::size_t n : {8u, 32u, 128u, 512u}) {
    apps::LanTestbed::Params params;
    params.hosts = n;
    params.switches = std::max<std::size_t>(2, n / 28);
    apps::LanTestbed lan(params);
    const auto nodes = lan.host_addrs(n);
    (void)lan.collector->query(nodes);  // discover + monitor everything

    core::SnmpCollectorConfig serial_cfg = lan.collector->config();
    serial_cfg.parallel_queries = false;
    serial_cfg.name = "serial";
    core::SnmpCollector serial(lan.engine, *lan.agents, serial_cfg);
    (void)serial.query(nodes);

    const double parallel_cost = [&] {
      const double before = lan.collector->snmp_time_consumed_s();
      lan.collector->poll_now();
      return lan.collector->snmp_time_consumed_s() - before;
    }();
    const double serial_cost = [&] {
      const double before = serial.snmp_time_consumed_s();
      serial.poll_now();
      return serial.snmp_time_consumed_s() - before;
    }();
    bench::row("%10zu %10zu %14.3f %14.3f %9.1fx", n, params.switches + 1, serial_cost,
               parallel_cost, serial_cost / parallel_cost);
  }
  bench::row("");
  bench::row("per-agent lanes bound the pass by the busiest device instead of the");
  bench::row("total — the threaded design the paper's collector relies on.");
  return 0;
}
