// Fleet-scale RPS prediction (ROADMAP item 4): 1k-1M live series through
// one FleetPredictor, incremental sliding-window fits vs the full-refit
// baseline.
//
// The full_refit rows ARE the pre-incremental cost model: every refit
// recomputes mean + lag-0..p autocovariance over the whole window (exactly
// what StreamingPredictor cost before IncrementalArFitter landed),
// re-measured live on identical windows so the comparison is always
// against this machine. baseline_ns_for() additionally embeds the values
// measured on the reference container at the PR that introduced the
// incremental path, so later regressions in either mode are visible
// against a fixed point.
//
// The workload is seeded and the fleet's counters are deterministic, so
// group/refit/seeding facts per fleet size are pure functions of the size
// (normalized per round). They are pinned in bench/rps_scale_pins.json and
// checked, together with the >= 5x incremental-vs-full-refit throughput
// ratchet at 100k series, by tools/check_rps_scale.py in the ci/check.sh
// rps-smoke stage.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "rps/fleet.hpp"
#include "rps/models.hpp"
#include "rps/shared_cache.hpp"

namespace {

using namespace remos;

// Workload shape: a 90/10 mix of AR(8)/AR(16) series (two spec-shape
// groups), with 1-in-100 series "young" — born with an empty window, so
// they can only answer via warm-tier template seeding until they age in.
constexpr std::size_t kWindow = 1024;
constexpr std::size_t kHorizon = 16;
constexpr bool is_ar16(std::size_t i) { return i % 10 == 9; }
constexpr bool is_young(std::size_t i) { return i % 100 == 37; }

/// Deterministic per-series load signal: AR(1)-flavored around 100 with
/// LCG noise; series index seeds the generator so every run and both fit
/// modes see identical windows.
struct SeriesGen {
  std::uint64_t state;
  double prev = 100.0;
  explicit SeriesGen(std::size_t i) : state(0x9E3779B97F4A7C15ULL ^ (i * 0xBF58476D1CE4E5B9ULL)) {}
  double next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u = static_cast<double>(state >> 11) * (1.0 / 9007199254740992.0);
    prev = 100.0 + 0.8 * (prev - 100.0) + 4.0 * (u - 0.5);
    return prev;
  }
};

struct Result {
  std::string name;  // "incremental" | "full_refit"
  std::size_t series = 0;
  std::size_t rounds = 0;
  double observe_ns = 0.0;  // per series-round
  double fit_ns = 0.0;      // per series-round
  double query_ns = 0.0;    // per series-round
  double total_ns = 0.0;    // observe + fit + query
  // Deterministic fleet facts (pinned, normalized per round by the checker).
  std::size_t groups = 0, young = 0;
  std::uint64_t refits_total = 0, fit_failures = 0;
  std::uint64_t seeded_predictions = 0, templates_published = 0;
  std::uint64_t warm_hits = 0, warm_misses = 0, predict_ok = 0;
  double baseline_ns = 0.0;  // reference total_ns, 0 if not recorded
};

/// Full-refit total ns per series-round measured on the reference
/// container at the commit introducing the incremental path (default
/// preset, sequential refits). Incremental rows' speedup column uses the
/// live full_refit measurement when one exists at that size and this
/// reference otherwise.
double baseline_ns_for(std::size_t series) {
  if (series == 1000) return 11600.0;
  if (series == 10000) return 10200.0;  // full refit is size-independent per
  if (series == 100000) return 11700.0; // series: O(window * p) every round
  if (series == 1000000) return 9850.0;
  return 0.0;
}

Result run_one(std::size_t n, std::size_t rounds, bool incremental) {
  rps::SharedPredictionCache cache(/*ttl_s=*/1e9, [] { return 0.0; });
  rps::FleetConfig cfg;
  cfg.window = kWindow;
  cfg.horizon = kHorizon;
  cfg.incremental = incremental;
  cfg.cache = &cache;
  // Sequential refits: CI runs on a single core, so the ratchet this bench
  // feeds must hold algorithmically, without parallel dispatch. (The pool
  // path is covered for bit-identity by test_rps_fleet.)
  cfg.pool = nullptr;
  rps::FleetPredictor fleet(cfg);

  const rps::ModelSpec ar8 = rps::ModelSpec::ar(8);
  const rps::ModelSpec ar16 = rps::ModelSpec::ar(16);
  std::vector<SeriesGen> gens;
  gens.reserve(n);
  std::vector<double> history;
  history.reserve(kWindow);
  std::size_t young = 0;
  for (std::size_t i = 0; i < n; ++i) {
    fleet.add_series(is_ar16(i) ? ar16 : ar8);
    gens.emplace_back(i);
    if (is_young(i)) {
      ++young;  // born with an empty window; seeded from the warm tier
      continue;
    }
    history.clear();
    for (std::size_t t = 0; t < kWindow; ++t) history.push_back(gens[i].next());
    fleet.prime(i, history);
  }

  Result r;
  r.name = incremental ? "incremental" : "full_refit";
  r.series = n;
  r.rounds = rounds;
  r.groups = fleet.group_count();
  r.young = young;

  double observe_s = 0.0;
  double fit_s = 0.0;
  double query_s = 0.0;
  rps::Prediction pred;
  for (std::size_t round = 0; round < rounds; ++round) {
    observe_s += bench::time_real([&] {
      for (std::size_t i = 0; i < n; ++i) fleet.observe(i, gens[i].next());
    });
    fit_s += bench::time_real([&] { fleet.refit_all(); });
    query_s += bench::time_real([&] {
      for (std::size_t i = 0; i < n; ++i) {
        if (fleet.predict_into(i, pred)) ++r.predict_ok;
      }
    });
  }

  const double ops = static_cast<double>(n) * static_cast<double>(rounds);
  r.observe_ns = observe_s * 1e9 / ops;
  r.fit_ns = fit_s * 1e9 / ops;
  r.query_ns = query_s * 1e9 / ops;
  r.total_ns = r.observe_ns + r.fit_ns + r.query_ns;
  r.refits_total = fleet.refits_total();
  r.fit_failures = fleet.fit_failures();
  r.seeded_predictions = fleet.seeded_predictions();
  r.templates_published = fleet.templates_published();
  r.warm_hits = cache.warm_hits();
  r.warm_misses = cache.warm_misses();
  return r;
}

void write_json(const std::string& path, const std::vector<Result>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_rps_scale: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"series\": %zu, \"rounds\": %zu, "
                 "\"observe_ns\": %.1f, \"fit_ns\": %.1f, \"query_ns\": %.1f, "
                 "\"total_ns\": %.1f, \"groups\": %zu, \"young\": %zu, "
                 "\"refits_total\": %llu, \"fit_failures\": %llu, "
                 "\"seeded_predictions\": %llu, \"templates_published\": %llu, "
                 "\"warm_hits\": %llu, \"warm_misses\": %llu, \"predict_ok\": %llu",
                 r.name.c_str(), r.series, r.rounds, r.observe_ns, r.fit_ns, r.query_ns,
                 r.total_ns, r.groups, r.young,
                 static_cast<unsigned long long>(r.refits_total),
                 static_cast<unsigned long long>(r.fit_failures),
                 static_cast<unsigned long long>(r.seeded_predictions),
                 static_cast<unsigned long long>(r.templates_published),
                 static_cast<unsigned long long>(r.warm_hits),
                 static_cast<unsigned long long>(r.warm_misses),
                 static_cast<unsigned long long>(r.predict_ok));
    if (r.baseline_ns > 0.0) {
      std::fprintf(f, ", \"baseline_ns\": %.1f, \"speedup\": %.2f", r.baseline_ns,
                   r.baseline_ns / r.total_ns);
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  std::string out = "BENCH_rps_scale.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    }
  }

  // Rounds shrink as the fleet grows (the full-refit rows at 1M pay
  // O(window * p) per series per round); every pinned counter is linear in
  // rounds, so the checker normalizes per round. Rounds never exceed 8 so
  // young series (empty window, order >= 8) stay unfittable — and therefore
  // warm-seeded — for the whole run.
  const std::vector<std::size_t> sizes = smoke
                                             ? std::vector<std::size_t>{1000, 100000}
                                             : std::vector<std::size_t>{1000, 10000, 100000,
                                                                        1000000};
  auto rounds_for = [&](std::size_t n) -> std::size_t {
    if (smoke) return n >= 100000 ? 3 : 5;
    return n >= 1000000 ? 3 : n >= 100000 ? 5 : 8;
  };

  std::vector<Result> results;
  for (const std::size_t n : sizes) {
    Result full = run_one(n, rounds_for(n), /*incremental=*/false);
    Result inc = run_one(n, rounds_for(n), /*incremental=*/true);
    inc.baseline_ns = full.total_ns > 0.0 ? full.total_ns : baseline_ns_for(n);
    results.push_back(std::move(full));
    results.push_back(std::move(inc));
  }

  bench::header("micro_rps_scale: fleet prediction, incremental vs full-refit fits",
                "DESIGN.md \"Fleet-scale prediction\"");
  bench::row("%-12s %9s %7s %10s %10s %10s %10s %8s", "mode", "series", "rounds", "observe_ns",
             "fit_ns", "query_ns", "total_ns", "speedup");
  for (const Result& r : results) {
    char speedup[24];
    if (r.baseline_ns > 0.0) {
      std::snprintf(speedup, sizeof speedup, "%.2fx", r.baseline_ns / r.total_ns);
    } else {
      std::snprintf(speedup, sizeof speedup, "-");
    }
    bench::row("%-12s %9zu %7zu %10.1f %10.1f %10.1f %10.1f %8s", r.name.c_str(), r.series,
               r.rounds, r.observe_ns, r.fit_ns, r.query_ns, r.total_ns, speedup);
  }
  write_json(out, results);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
