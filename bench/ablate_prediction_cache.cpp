// Ablation: caching and sharing of prediction results — the open issue the
// paper lists in §6.2 ("an evaluation of techniques for caching and
// sharing of prediction results").
//
// Scenario: N consumers ask for the same resource's forecast within a
// window (think: every client of a popular mirror probing it). Without
// sharing, each pays an AR(16) fit; with the shared cache, one fit serves
// everyone until the TTL expires. The trade-off is staleness: long TTLs
// serve predictions made from old history.
#include "bench/bench_util.hpp"
#include "net/hostload.hpp"
#include "rps/predictor.hpp"
#include "rps/shared_cache.hpp"

using namespace remos;

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  bench::header("Ablation — caching/sharing of prediction results",
                "N consumers of one resource within a 30 s window, AR(16) on 600 samples");

  sim::Rng rng(3);
  const std::vector<double> history = net::generate_host_load(600, rng);
  rps::ClientServerPredictor service(rps::ModelSpec::ar(16));
  rps::ClientServerPredictor::Request req;
  req.history = history;
  req.horizon = 30;

  const double per_fit_s = bench::time_per_iteration([&] {
    auto p = service.predict(req);
    (void)p;
  });
  bench::row("cost of one fit+predict: %.1f us", per_fit_s * 1e6);
  bench::row("");
  bench::row("%12s %14s %18s %20s", "consumers", "hit rate", "fits performed", "CPU saved");
  for (int consumers : {1, 5, 20, 100, 500}) {
    double fake_clock = 0.0;
    rps::SharedPredictionCache cache(30.0, [&] { return fake_clock; });
    int fits = 0;
    for (int c = 0; c < consumers; ++c) {
      cache.get_or_compute("edge-42", [&] {
        ++fits;
        return service.predict(req);
      });
      fake_clock += 30.0 / consumers;  // consumers spread across the window
    }
    const double saved = static_cast<double>(consumers - fits) * per_fit_s;
    bench::row("%12d %13.0f%% %18d %17.1f us", consumers, cache.hit_rate() * 100.0, fits,
               saved * 1e6);
  }

  bench::row("");
  bench::row("staleness trade-off: a TTL of one collector poll interval (5-30 s)");
  bench::row("bounds prediction age at one sample while eliminating nearly all");
  bench::row("repeat fits under fan-in — the sharing the paper anticipated.");
  return 0;
}
