// Ablation: naive O(N^2) pairwise discovery vs the optimized star walk.
//
// §5.1: "the worst case cost of a cold cache query is O(N^2). However, we
// implemented a number of optimizations that reduce the cost, especially
// for large N; the measurements show the effect." This bench shows both
// sides of that sentence.
#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"

using namespace remos;

namespace {

double cold_query_cost(std::size_t hosts, bool pairwise) {
  apps::LanTestbed::Params params;
  params.hosts = hosts;
  params.switches = std::max<std::size_t>(2, hosts / 28);
  apps::LanTestbed lan(params);
  lan.bridge->startup();  // isolate discovery strategy from bridge cost

  core::SnmpCollectorConfig cfg = lan.collector->config();
  cfg.name = pairwise ? "pairwise" : "star";
  cfg.pairwise_discovery = pairwise;
  core::SnmpCollector collector(lan.engine, *lan.agents, cfg);
  return collector.query(lan.host_addrs(hosts)).cost_s;
}

}  // namespace

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  bench::header("Ablation — pairwise O(N^2) vs optimized star discovery",
                "cold SNMP-collector query cost, bridge database pre-warmed");
  bench::row("%8s %14s %14s %12s", "nodes", "pairwise", "star", "ratio");
  double prev_pair = 0.0, prev_star = 0.0;
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const double pair = cold_query_cost(n, true);
    const double star = cold_query_cost(n, false);
    bench::row("%8zu %12.3f s %12.3f s %11.1fx", n, pair, star, pair / star);
    if (n == 128u) {
      prev_pair = pair;
      prev_star = star;
    }
    if (n == 256u && prev_pair > 0) {
      bench::row("");
      bench::row("N 128 -> 256 (2x): pairwise grows %.1fx (toward O(N^2)), star grows %.1fx",
                 pair / prev_pair, star / prev_star);
    }
  }
  bench::row("");
  bench::row("the paper's optimizations turn the cold worst case from quadratic");
  bench::row("pairwise route-following into a near-linear spanning walk.");
  return 0;
}
