// Figure 9: mirrored-server selection among poorly-connected sites.
//
// Paper setup: client at CMU; servers at the University of Coimbra
// (0.25 Mb/s average), University of Valladolid (1.02 Mb/s), and a
// Pittsburgh DSL host (0.08 Mb/s upstream); 72 trials; Remos picked the
// fastest site 82% of the time — selection works even when every option
// is slow.
#include "bench/mirror_common.hpp"

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  remos::bench::run_mirror_experiment(
      "Fig 9", "poorly-connected sites (paper: 82% correct over 72 trials)",
      {
          {"coimbra", 0.52e6, 0.25},
          {"valladolid", 1.0e6, 0.45},
          {"dsl", 0.36e6, 0.20},
      },
      /*trials=*/72, /*seed=*/9);
  return 0;
}
