// Figure 7: CPU time to fit/init and step/predict the RPS predictive
// models. The paper fits each model to 600 samples and reports per-model
// costs spanning roughly four orders of magnitude, from LAST/MEAN up to
// the ARMA/ARIMA family.
//
// Implemented with google-benchmark: one Fit and one StepPredict benchmark
// per model.
//
// The IncrementalStep/FullRefit rows compare the two ways of keeping an AR
// fit current as samples stream in: the sliding-window sum update
// (IncrementalArFitter::push + fit_into, O(p) + O(p^2) per sample) against
// re-running batch Yule-Walker over the whole window (O(window * p)). The
// ratio is the per-series saving the fleet-scale path banks on; the
// fleet-level version is bench/micro_rps_scale.cpp.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "net/hostload.hpp"
#include "rps/incremental.hpp"
#include "rps/linear.hpp"
#include "rps/models.hpp"

namespace {

using namespace remos;

const std::vector<double>& fit_data() {
  static const std::vector<double> data = [] {
    sim::Rng rng(123);
    return net::generate_host_load(600, rng);
  }();
  return data;
}

const std::vector<double>& stream_data() {
  static const std::vector<double> data = [] {
    sim::Rng rng(321);
    return net::generate_host_load(4096, rng);
  }();
  return data;
}

void BM_Fit(benchmark::State& state, const char* spec_text) {
  const auto spec = rps::ModelSpec::parse(spec_text);
  for (auto _ : state) {
    auto model = rps::make_model(*spec);
    model->fit(fit_data());
    benchmark::DoNotOptimize(model);
  }
}

void BM_StepPredict(benchmark::State& state, const char* spec_text) {
  const auto spec = rps::ModelSpec::parse(spec_text);
  auto model = rps::make_model(*spec);
  model->fit(fit_data());
  std::size_t i = 0;
  for (auto _ : state) {
    model->step(stream_data()[i++ & 4095]);
    auto pred = model->predict(30);
    benchmark::DoNotOptimize(pred);
  }
}

#define REMOS_MODEL_BENCH(name, spec)                          \
  BENCHMARK_CAPTURE(BM_Fit, name, spec);                       \
  BENCHMARK_CAPTURE(BM_StepPredict, name, spec)

// The model menu of the paper's Fig 7 (MEAN, LAST, BM, AR/BESTMEAN-style
// windows, MA, ARMA, ARIMA, fractional ARIMA).
REMOS_MODEL_BENCH(MEAN, "MEAN");
REMOS_MODEL_BENCH(LAST, "LAST");
REMOS_MODEL_BENCH(BM32, "BM32");
REMOS_MODEL_BENCH(AR8, "AR8");
REMOS_MODEL_BENCH(AR16, "AR16");
REMOS_MODEL_BENCH(AR32, "AR32");
REMOS_MODEL_BENCH(ARBURG16, "ARBURG16");
REMOS_MODEL_BENCH(MA8, "MA8");
REMOS_MODEL_BENCH(ARMA88, "ARMA(8,8)");
REMOS_MODEL_BENCH(ARIMA212, "ARIMA(2,1,2)");
REMOS_MODEL_BENCH(FARIMA, "FARIMA(1,0.4,1)");

// Refreshing an AR fit per streamed sample: incremental sum update vs
// batch recompute over the same 600-sample window.
void BM_IncrementalStep(benchmark::State& state, std::size_t order) {
  rps::IncrementalArFitter fitter(order, fit_data().size());
  fitter.assign(fit_data());
  rps::ArFit fit;
  rps::ArFitScratch scratch;
  std::size_t i = 0;
  for (auto _ : state) {
    fitter.push(stream_data()[i++ & 4095]);
    fitter.fit_into(fit, scratch);
    benchmark::DoNotOptimize(fit.sigma2);
  }
}

void BM_FullRefit(benchmark::State& state, std::size_t order) {
  std::vector<double> window = fit_data();
  std::size_t i = 0;
  for (auto _ : state) {
    // The pre-incremental cost model: shift the window and refit from raw
    // samples every step.
    window.erase(window.begin());
    window.push_back(stream_data()[i++ & 4095]);
    rps::ArFit fit = rps::fit_ar_yule_walker(window, order);
    benchmark::DoNotOptimize(fit.sigma2);
  }
}

#define REMOS_REFIT_BENCH(name, order)                         \
  BENCHMARK_CAPTURE(BM_IncrementalStep, name, order);          \
  BENCHMARK_CAPTURE(BM_FullRefit, name, order)

REMOS_REFIT_BENCH(AR8, 8u);
REMOS_REFIT_BENCH(AR16, 16u);
REMOS_REFIT_BENCH(AR32, 32u);

}  // namespace

// Custom entry point instead of BENCHMARK_MAIN(): BenchMain adds the shared
// --metrics-out/--table-out flags (stripping them before google-benchmark
// sees the argument list).
int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
