// Ablation: route/path caching in the SNMP Collector.
//
// Fig 3 attributes a >= 3x speedup to caching; this ablation isolates it by
// running the same repeated query with caching enabled vs disabled across
// LAN sizes.
#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"

using namespace remos;

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  bench::header("Ablation — route/path cache on vs off",
                "repeated 'query all hosts' cost (simulated seconds)");
  bench::row("%8s %14s %14s %12s", "nodes", "cache on", "cache off", "speedup");
  for (std::size_t n : {8u, 32u, 128u, 512u}) {
    apps::LanTestbed::Params params;
    params.hosts = n;
    params.switches = std::max<std::size_t>(2, n / 28);
    apps::LanTestbed lan(params);
    const auto nodes = lan.host_addrs(n);

    (void)lan.collector->query(nodes);  // warm everything (incl. bridge)
    const double cached = lan.collector->query(nodes).cost_s;

    core::SnmpCollectorConfig cfg = lan.collector->config();
    cfg.cache_enabled = false;
    cfg.name = "no-cache";
    core::SnmpCollector nocache(lan.engine, *lan.agents, cfg);
    (void)nocache.query(nodes);
    const double uncached = nocache.query(nodes).cost_s;

    bench::row("%8zu %14.3f %14.3f %11.1fx", n, cached, uncached, uncached / cached);
  }
  bench::row("");
  bench::row("caching converts per-query SNMP round trips into local lookups; the");
  bench::row("advantage grows with N (the paper's warm-vs-cold factor >= 3).");
  return 0;
}
