// Ablation: client-server vs streaming prediction (§2.3).
//
// "The advantage of the client-server form is that it is stateless, while
// the advantage of the streaming mode is that a single model fitting
// operation can be amortized over multiple predictions." This ablation
// measures real CPU per prediction for both modes as the number of
// predictions per fitted model grows, and confirms accuracy parity.
#include <cmath>

#include "bench/bench_util.hpp"
#include "net/hostload.hpp"
#include "rps/predictor.hpp"

using namespace remos;

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  bench::header("Ablation — client-server vs streaming prediction cost",
                "AR(16) on host load, 600-sample fit, 30-step horizon (real CPU)");

  sim::Rng rng(5);
  const std::vector<double> history = net::generate_host_load(600, rng);
  const std::vector<double> stream = net::generate_host_load(4096, rng);

  // Client-server: fit + predict on every request.
  rps::ClientServerPredictor service(rps::ModelSpec::ar(16));
  rps::ClientServerPredictor::Request req;
  req.history = history;
  req.horizon = 30;
  const double cs_per_request = bench::time_per_iteration([&] {
    auto p = service.predict(req);
    (void)p;
  });

  // Streaming: one fit amortized across pushes.
  rps::StreamingConfig cfg;
  cfg.horizon = 30;
  cfg.refit_on_error = false;
  rps::StreamingPredictor streaming(rps::ModelSpec::ar(16), cfg);
  streaming.prime(history);
  std::size_t cursor = 0;
  const double stream_per_push = bench::time_per_iteration([&] {
    (void)streaming.push(stream[cursor++ & 4095]);
  });

  bench::row("client-server: %8.1f us per prediction (fit + predict every request)",
             cs_per_request * 1e6);
  bench::row("streaming:     %8.1f us per prediction (fit amortized)", stream_per_push * 1e6);
  bench::row("");
  bench::row("%18s %22s", "preds per fit", "streaming total / CS total");
  const double fit_cost = cs_per_request - stream_per_push;
  for (int k : {1, 10, 100, 1000}) {
    const double streaming_total = fit_cost + k * stream_per_push;
    const double cs_total = static_cast<double>(k) * cs_per_request;
    bench::row("%18d %21.2fx", k, streaming_total / cs_total);
  }
  bench::row("");
  bench::row("one consumer, one prediction: the stateless form costs the same; once");
  bench::row("predictions are shared, streaming amortizes the fit (the paper keeps");
  bench::row("both modes because 'both are useful in practice').");
  return 0;
}
