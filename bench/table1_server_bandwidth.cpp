// Table 1: per-server available bandwidth (mean and standard deviation)
// measured by Remos from the video client's site at ETH Zurich.
//
// Paper values (Mb/s):
//   ETH Zurich      63.1   +- 5.61   (local: order of magnitude above EPFL)
//   EPFL Lausanne    3.03  +- 0.17   (order of magnitude above the rest)
//   CMU              0.50  +- 0.28
//   U. Valladolid    0.37  +- 0.28
//   U. Coimbra       0.18  +- 0.07
//
// The reproduced result is the *structure*: two order-of-magnitude tiers
// plus three slow distant sites, with fluctuation driven by cross traffic.
#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"

using namespace remos;

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  apps::WanTestbed::Params params;
  params.seed = 1;
  params.probe_all_pairs = false;
  params.cross_period_s = 25.0;
  params.sites = {
      {"client", 2, 100e6, 80e6},  // video client's campus (ETH side)
      {"eth", 2, 100e6, 70e6},     // local server, same campus fabric
      {"epfl", 2, 100e6, 3.4e6},
      {"cmu", 2, 100e6, 0.85e6},
      {"valladolid", 2, 100e6, 0.62e6},
      {"coimbra", 2, 100e6, 0.30e6},
  };
  params.site_cross_load = {0.02, 0.05, 0.08, 0.18, 0.18, 0.15};
  apps::WanTestbed wan(params);
  wan.warm_up(120.0);

  const auto client = wan.addr(wan.host("client", 1));
  struct Row {
    const char* site;
    sim::RunningStats stats;
  };
  std::vector<Row> rows{{"eth", {}}, {"epfl", {}}, {"cmu", {}}, {"valladolid", {}},
                        {"coimbra", {}}};

  // Repeated Remos flow queries over a (compressed) day of operation.
  for (int sample = 0; sample < 48; ++sample) {
    for (Row& r : rows) {
      const core::FlowInfo info =
          wan.modeler->flow_info(wan.addr(wan.host(r.site, 1)), client);
      r.stats.add(info.available_bps);
    }
    wan.engine.advance(60.0);
  }

  bench::header("Table 1 — server available bandwidth measured by Remos",
                "mean +- stddev per server site, from the client at ETH");
  bench::row("%-14s %16s %16s %20s", "server", "avg BW (Mb/s)", "stddev (Mb/s)", "paper (Mb/s)");
  const char* paper[] = {"63.1 +- 5.61", "3.03 +- 0.17", "0.50 +- 0.28", "0.37 +- 0.28",
                         "0.18 +- 0.07"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    bench::row("%-14s %16.2f %16.2f %20s", rows[i].site, rows[i].stats.mean() / 1e6,
               rows[i].stats.stddev() / 1e6, paper[i]);
  }
  bench::row("");
  bench::row("shape check: eth / epfl = %.0fx, epfl / cmu = %.1fx (paper: each 'an order",
             rows[0].stats.mean() / rows[1].stats.mean(),
             rows[1].stats.mean() / rows[2].stats.mean());
  bench::row("of magnitude' apart)");
  return 0;
}
