// Figure 5: SNMP Collector accuracy at the default 5-second interval.
// Same testbed and burst schedule as Fig 4; coarser sampling tracks the
// bursts more loosely but still matches well on average.
#include "bench/accuracy_common.hpp"

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  remos::bench::run_accuracy_experiment(/*interval_s=*/5.0, "Fig 5", 42);
  return 0;
}
