// Shared harness for the mirrored-server experiments (Figs 8-9): a client
// site plus replica sites with distinct WAN connectivity; repeated trials
// of "rank via Remos, then download from every replica, best-ranked first".
#pragma once

#include <string>
#include <vector>

#include "apps/mirror.hpp"
#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"

namespace remos::bench {

struct MirrorSiteSpec {
  std::string name;
  double access_bps;
  double cross_load;
};

inline void run_mirror_experiment(const std::string& figure, const std::string& note,
                                  const std::vector<MirrorSiteSpec>& servers, int trials,
                                  std::uint64_t seed) {
  apps::WanTestbed::Params params;
  params.seed = seed;
  params.sites.push_back({"client", 2, 100e6, 50e6});  // well-provisioned client site
  params.site_cross_load.push_back(0.05);
  for (const MirrorSiteSpec& s : servers) {
    params.sites.push_back({s.name, 2, 100e6, s.access_bps});
    params.site_cross_load.push_back(s.cross_load);
  }
  // Cross traffic changes slowly relative to a trial, as Internet-scale
  // congestion did for the paper's sites.
  params.cross_period_s = 150.0;
  apps::WanTestbed wan(params);
  wan.warm_up(120.0);

  std::vector<apps::MirrorServer> replicas;
  for (const MirrorSiteSpec& s : servers) {
    replicas.push_back(apps::MirrorServer{s.name, wan.host(s.name, 1),
                                          wan.addr(wan.host(s.name, 1))});
  }
  apps::MirrorClient client(wan.engine, *wan.flows, *wan.modeler, wan.host("client", 1),
                            wan.addr(wan.host("client", 1)), replicas);

  // Aggregate by remos rank, split into correct / incorrect picks.
  const std::size_t n = replicas.size();
  std::vector<sim::RunningStats> by_rank_correct(n), by_rank_wrong(n);
  sim::RunningStats eff_correct, eff_wrong;
  int correct = 0;
  for (int t = 0; t < trials; ++t) {
    const apps::MirrorTrialResult r = client.run_trial();
    auto& by_rank = r.remos_correct ? by_rank_correct : by_rank_wrong;
    for (std::size_t rank = 0; rank < n; ++rank) {
      by_rank[rank].add(r.achieved_bps[r.remos_ranking[rank]]);
    }
    (r.remos_correct ? eff_correct : eff_wrong).add(r.effective_bps);
    if (r.remos_correct) ++correct;
    wan.engine.advance(120.0);  // network drifts between trials
  }

  header(figure + " — mirrored-server selection, " + note,
         "average transfer rates grouped by whether Remos picked the fastest site");
  row("trials: %d   remos picked the actual best site: %d (%.0f%%)", trials, correct,
      100.0 * correct / trials);
  row("");
  row("%-34s %12s %12s", "bar", "when correct", "when wrong");
  row("%-34s %9.2f Mb %9.2f Mb", "1st site (chosen) avg BW",
      by_rank_correct[0].mean() / 1e6, by_rank_wrong[0].mean() / 1e6);
  row("%-34s %9.2f Mb %9.2f Mb", "1st site effective BW (incl. query)",
      eff_correct.mean() / 1e6, eff_wrong.mean() / 1e6);
  for (std::size_t rank = 1; rank < n; ++rank) {
    row("%-31s #%zu %9.2f Mb %9.2f Mb", "site at remos rank", rank + 1,
        by_rank_correct[rank].mean() / 1e6, by_rank_wrong[rank].mean() / 1e6);
  }
  row("");
  row("expected shape: when correct, the chosen site clearly beats ranks 2..%zu;", n);
  row("effective BW (including the Remos query) still beats picking a slower site.");
}

}  // namespace remos::bench
