// Ablation: Benchmark Collector intrusiveness.
//
// §6.1: benchmarking "is too expensive and intrusive for many types of
// networks, and we need to utilize more lightweight techniques such as the
// SNMP Collector." This ablation measures the probe bytes injected and the
// bandwidth stolen from an application flow, as probe size and period vary,
// against the SNMP Collector's passive cost for the same link.
#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"

using namespace remos;

namespace {

struct Point {
  double app_throughput_bps = 0.0;
  std::uint64_t probe_bytes = 0;
};

Point run(double period_s, std::uint64_t probe_bytes) {
  apps::WanTestbed::Params params;
  params.sites = {{"a", 2, 100e6, 2e6}, {"b", 2, 100e6, 2e6}};
  params.cross_traffic_load = 0.0;
  params.benchmark_period_s = period_s;
  params.probe_bytes = probe_bytes;
  apps::WanTestbed wan(params);
  wan.benchmark->start_periodic();

  // An application flow shares the 2 Mb/s path with the probes for 10 min.
  const net::FlowId app = wan.flows->start(
      net::FlowSpec{.src = wan.host("a", 1), .dst = wan.host("b", 1)});
  wan.engine.advance(600.0);
  wan.flows->stop(app);  // finalizes delivered bytes and duration
  const auto stats = wan.flows->stats(app);
  return Point{stats ? stats->average_bps() : 0.0, wan.benchmark->bytes_injected()};
}

}  // namespace

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  bench::header("Ablation — benchmark probing intrusiveness",
                "2 Mb/s WAN path shared by an application flow for 10 minutes");

  const Point baseline = run(1e9, 256 * 1024);  // effectively no probing
  bench::row("baseline (no probes): app achieves %.3f Mb/s", baseline.app_throughput_bps / 1e6);
  bench::row("");
  bench::row("%12s %12s %16s %16s %12s", "period", "probe KB", "injected MB", "app Mb/s",
             "app loss");
  for (double period : {60.0, 15.0, 5.0}) {
    for (std::uint64_t kb : {64ull, 256ull, 1024ull}) {
      const Point p = run(period, kb * 1024);
      bench::row("%10.0f s %12llu %16.2f %16.3f %11.1f%%", period,
                 static_cast<unsigned long long>(kb),
                 static_cast<double>(p.probe_bytes) / 1e6, p.app_throughput_bps / 1e6,
                 100.0 * (1.0 - p.app_throughput_bps / baseline.app_throughput_bps));
    }
  }
  bench::row("");
  bench::row("for comparison, the SNMP Collector's cost for the same link is a few");
  bench::row("counter GETs per interval — bytes on the management plane, zero data-");
  bench::row("plane bandwidth: the reason Remos prefers SNMP wherever it has access.");
  return 0;
}
