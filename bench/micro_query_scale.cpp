// Query serving at scale (ROADMAP item 1): client fleets of 1k-100k
// simulated concurrent queries against one QueryServer over a warmed
// multi-site WAN, snapshot path vs the retained mutex path.
//
// The mutex rows ARE the pre-snapshot cost model (one global lock and one
// collector fetch per query — exactly what Modeler queries cost before
// epoch publication landed), re-measured live so the comparison is always
// against this machine. baseline_qps_for() additionally embeds the values
// measured on the reference container at the PR that introduced the
// snapshot path, so later regressions in either path are visible against
// a fixed point.
//
// Timing lives in tests/query_fleet.hpp (the fleet harness measures
// per-query latency + fleet wall time); this file only shapes workloads
// and reports. Deterministic workload facts — query mix and distinct
// coalescing keys per fleet size — are pinned in
// bench/query_scale_pins.json and checked, together with the server's own
// coalescing/admission counters, by tools/check_query_scale.py in the
// ci/check.sh query-smoke stage.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"
#include "core/query_server.hpp"
#include "query_fleet.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace remos;

struct Result {
  std::string name;  // "snapshot" | "mutex"
  std::size_t clients = 0;
  double qps = 0.0;
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
  std::uint64_t queries = 0;
  std::uint64_t computations = 0;
  std::uint64_t coalesce_hits = 0;
  std::uint64_t predict_rejected = 0;
  // Deterministic workload shape (pinned).
  std::size_t topology_queries = 0, flow_queries = 0, predict_queries = 0, distinct_keys = 0;
  double baseline_qps = 0.0;  // reference measurement, 0 if not recorded
};

/// Mutex-path throughput (queries/s) measured on the reference container
/// at the commit introducing the snapshot path (mean of 3 runs, default
/// preset, 4-worker fleet). The snapshot rows' speedup column uses the
/// live mutex measurement when one exists at that size and this reference
/// otherwise.
double baseline_qps_for(std::size_t clients) {
  if (clients == 1000) return 13500.0;
  if (clients == 10000) return 13500.0;   // mutex path is size-independent
  if (clients == 100000) return 13500.0;  // (every query pays the same fetch)
  return 0.0;
}

apps::WanTestbed::Params bench_sites() {
  apps::WanTestbed::Params p;
  p.sites = {{"cmu", 8, 100e6, 10e6},
             {"eth", 8, 100e6, 4e6},
             {"ucsd", 8, 100e6, 6e6},
             {"isi", 8, 100e6, 8e6}};
  p.cross_traffic_load = 0.3;
  return p;
}

core::QueryServerConfig bench_config() {
  core::QueryServerConfig cfg;
  cfg.prediction_model = rps::ModelSpec::ar(4);
  cfg.min_history = 16;
  return cfg;
}

std::vector<net::Ipv4Address> all_hosts(const apps::WanTestbed& w) {
  std::vector<net::Ipv4Address> out;
  for (const auto& site : w.sites) {
    for (net::NodeId h : site.hosts) out.push_back(w.addr(h));
  }
  return out;
}

Result run_one(apps::WanTestbed& w, const std::vector<net::Ipv4Address>& universe,
               std::size_t clients, bool locked, sim::ThreadPool& pool, int reps) {
  const auto queries = fleet::make_workload(universe, clients, 0x5CA1EULL + clients);
  const fleet::WorkloadStats ws = fleet::workload_stats(queries);
  // Fresh server per repetition: counters start at zero and one epoch
  // serves the whole fleet — the deterministic-coalescing contract the
  // pins assume holds for every repetition, so it is asserted against the
  // first while the timing columns keep the best (least-disturbed) run.
  Result r;
  fleet::FleetResult best;
  for (int rep = 0; rep < reps; ++rep) {
    core::QueryServer server(*w.master, universe, bench_config());
    const fleet::FleetResult fr = fleet::run_fleet(server, queries, pool, locked);
    if (rep == 0) {
      r.queries = server.queries_total();
      r.computations = server.computations();
      r.coalesce_hits = server.coalesce_hits();
      r.predict_rejected = server.predict_rejected();
    }
    if (fr.throughput_qps > best.throughput_qps) best = fr;
  }
  r.name = locked ? "mutex" : "snapshot";
  r.clients = clients;
  r.qps = best.throughput_qps;
  r.p50_us = best.p50_s * 1e6;
  r.p95_us = best.p95_s * 1e6;
  r.p99_us = best.p99_s * 1e6;
  r.topology_queries = ws.topology_queries;
  r.flow_queries = ws.flow_queries;
  r.predict_queries = ws.predict_queries;
  r.distinct_keys = ws.distinct_keys;
  return r;
}

void write_json(const std::string& path, const std::vector<Result>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_query_scale: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"clients\": %zu, \"qps\": %.1f, "
                 "\"p50_us\": %.2f, \"p95_us\": %.2f, \"p99_us\": %.2f, "
                 "\"queries\": %llu, \"computations\": %llu, \"coalesce_hits\": %llu, "
                 "\"predict_rejected\": %llu, \"topology_queries\": %zu, "
                 "\"flow_queries\": %zu, \"predict_queries\": %zu, \"distinct_keys\": %zu",
                 r.name.c_str(), r.clients, r.qps, r.p50_us, r.p95_us, r.p99_us,
                 static_cast<unsigned long long>(r.queries),
                 static_cast<unsigned long long>(r.computations),
                 static_cast<unsigned long long>(r.coalesce_hits),
                 static_cast<unsigned long long>(r.predict_rejected), r.topology_queries,
                 r.flow_queries, r.predict_queries, r.distinct_keys);
    if (r.baseline_qps > 0.0) {
      std::fprintf(f, ", \"baseline_qps\": %.1f, \"speedup\": %.2f", r.baseline_qps,
                   r.qps / r.baseline_qps);
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  std::string out = "BENCH_query_scale.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--smoke") {
      smoke = true;
    }
  }

  apps::WanTestbed w(bench_sites());
  w.warm_up(16.0 * w.params.benchmark_period_s + 30.0);
  const auto universe = all_hosts(w);
  sim::ThreadPool pool(4);

  // The mutex path pays a full collector fetch per query, so its cost per
  // client is flat — measuring it at 1k bounds it everywhere. The snapshot
  // path is measured through the full ladder.
  const std::vector<std::size_t> mutex_sizes{1000};
  const std::vector<std::size_t> snapshot_sizes =
      smoke ? std::vector<std::size_t>{1000} : std::vector<std::size_t>{1000, 10000, 100000};

  const int reps = smoke ? 3 : 5;
  std::vector<Result> results;
  double mutex_qps_1k = 0.0;
  for (const std::size_t n : mutex_sizes) {
    Result r = run_one(w, universe, n, /*locked=*/true, pool, reps);
    mutex_qps_1k = r.qps;
    results.push_back(std::move(r));
  }
  for (const std::size_t n : snapshot_sizes) {
    Result r = run_one(w, universe, n, /*locked=*/false, pool,
                       n >= 100000 ? 1 : reps);
    r.baseline_qps = (n == 1000 && mutex_qps_1k > 0.0) ? mutex_qps_1k : baseline_qps_for(n);
    results.push_back(std::move(r));
  }

  bench::header("micro_query_scale: client-fleet query serving, snapshot vs mutex path",
                "DESIGN.md \"Snapshot publication\"");
  bench::row("%-9s %8s %12s %10s %10s %10s %9s %9s %8s", "path", "clients", "qps", "p50us",
             "p95us", "p99us", "computed", "hits", "speedup");
  for (const Result& r : results) {
    char speedup[24];
    if (r.baseline_qps > 0.0) {
      std::snprintf(speedup, sizeof speedup, "%.2fx", r.qps / r.baseline_qps);
    } else {
      std::snprintf(speedup, sizeof speedup, "-");
    }
    bench::row("%-9s %8zu %12.1f %10.2f %10.2f %10.2f %9llu %9llu %8s", r.name.c_str(),
               r.clients, r.qps, r.p50_us, r.p95_us, r.p99_us,
               static_cast<unsigned long long>(r.computations),
               static_cast<unsigned long long>(r.coalesce_hits), speedup);
  }
  write_json(out, results);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
