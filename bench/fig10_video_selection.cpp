// Figure 10: video server selection vs client-perceived quality.
//
// The client measures available bandwidth to every video server via Remos,
// downloads the movie from the best server first, then from the others in
// decreasing reported order; quality = number of correctly received frames
// (the adaptive server drops low-priority frames to fit the bandwidth).
//
// The paper excludes ETH and EPFL from the plot (their bandwidth always
// exceeds the movie's needs: zero dropped frames); among the remaining
// sites the best-bandwidth server delivered the most frames in ~90% of 21
// experiments.
#include <algorithm>

#include "apps/testbed.hpp"
#include "apps/video.hpp"
#include "bench/bench_util.hpp"

using namespace remos;

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  apps::WanTestbed::Params params;
  params.seed = 10;
  params.probe_all_pairs = false;
  params.cross_period_s = 600.0;
  params.sites = {
      {"client", 2, 100e6, 80e6},
      {"eth", 2, 100e6, 70e6},
      {"epfl", 2, 100e6, 3.4e6},
      {"cmu", 2, 100e6, 0.75e6},
      {"valladolid", 2, 100e6, 0.60e6},
      {"coimbra", 2, 100e6, 0.25e6},
  };
  params.site_cross_load = {0.02, 0.05, 0.08, 0.30, 0.35, 0.25};
  apps::WanTestbed wan(params);
  wan.warm_up(120.0);

  const net::NodeId client = wan.host("client", 1);
  const auto client_addr = wan.addr(client);
  const std::vector<std::string> slow_sites{"cmu", "valladolid", "coimbra"};

  bench::header("Fig 10 — frames received vs server picked by measured bandwidth",
                "21 experiments; ETH/EPFL excluded (never frame-limited), as in the paper");
  bench::row("%6s %-12s %10s %10s %10s %10s", "exp", "picked", "cmu", "valladolid", "coimbra",
             "best?");

  sim::Rng movie_rng(77);
  int correct = 0;
  const int experiments = 21;
  for (int e = 0; e < experiments; ++e) {
    // Different movie each experiment, as in the paper's 24-hour run.
    const apps::Movie movie =
        apps::Movie::generate("movie" + std::to_string(e), 25, 0.45e6, movie_rng);

    // Remos query to all slow servers.
    std::vector<std::pair<std::string, double>> ranked;
    for (const auto& site : slow_sites) {
      const core::FlowInfo info = wan.modeler->flow_info(wan.addr(wan.host(site, 1)), client_addr);
      ranked.emplace_back(site, info.available_bps);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) { return a.second > b.second; });
    const std::string picked = ranked.front().first;

    // Download from each server in decreasing reported order.
    std::map<std::string, std::size_t> frames;
    for (const auto& [site, remos_bps] : ranked) {
      apps::VideoServerConfig cfg;
      cfg.initial_estimate_bps = std::max(remos_bps, 1e4);
      const apps::StreamResult r =
          apps::stream_movie(wan.engine, *wan.flows, wan.host(site, 1), client, movie, cfg);
      frames[site] = r.frames_received_correctly;
    }
    std::size_t best_frames = 0;
    std::string best_site;
    for (const auto& [site, f] : frames) {
      if (f > best_frames) {
        best_frames = f;
        best_site = site;
      }
    }
    const bool ok = (best_site == picked);
    if (ok) ++correct;
    bench::row("%6d %-12s %10zu %10zu %10zu %10s", e + 1, picked.c_str(), frames["cmu"],
               frames["valladolid"], frames["coimbra"], ok ? "yes" : "NO");
    wan.engine.advance(400.0);  // drift between experiments
  }
  bench::row("");
  bench::row("picked server delivered the most frames: %d/%d (%.0f%%; paper: ~90%%)", correct,
             experiments, 100.0 * correct / experiments);
  return 0;
}
