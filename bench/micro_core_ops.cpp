// Microbenchmarks for the hot paths of the Remos core: SNMP walks, fluid
// max-min recomputation, Modeler max-min allocation, topology merge, and
// protocol encode/decode. Google-benchmark.
#include <benchmark/benchmark.h>

#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"
#include "core/maxmin.hpp"
#include "core/protocol.hpp"
#include "snmp/client.hpp"
#include "snmp/oids.hpp"

namespace {

using namespace remos;

void BM_SnmpWalkIfTable(benchmark::State& state) {
  static apps::LanTestbed lan = [] {
    apps::LanTestbed::Params p;
    p.hosts = 64;
    p.switches = 4;
    return apps::LanTestbed(p);
  }();
  snmp::SnmpClient client(*lan.agents);
  const auto addr = lan.net.node(lan.switches[0]).primary_address();
  for (auto _ : state) {
    auto rows = client.walk(addr, "public", snmp::oids::kIfTableEntry);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_SnmpWalkIfTable);

void BM_FluidMaxMinRecompute(benchmark::State& state) {
  const auto n_flows = static_cast<std::size_t>(state.range(0));
  apps::LanTestbed::Params p;
  p.hosts = 32;
  p.switches = 4;
  apps::LanTestbed lan(p);
  for (std::size_t i = 0; i + 1 < n_flows; ++i) {
    lan.flows->start(net::FlowSpec{.src = lan.hosts[i % 32],
                                   .dst = lan.hosts[(i + 7) % 32]});
  }
  for (auto _ : state) {
    // start+stop forces two full max-min recomputations.
    const net::FlowId f = lan.flows->start(net::FlowSpec{.src = lan.hosts[0], .dst = lan.hosts[9]});
    lan.flows->stop(f);
  }
}
BENCHMARK(BM_FluidMaxMinRecompute)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_ModelerMaxMinAllocate(benchmark::State& state) {
  apps::LanTestbed::Params p;
  p.hosts = 32;
  p.switches = 4;
  apps::LanTestbed lan(p);
  const auto nodes = lan.host_addrs(32);
  const auto resp = lan.collector->query(nodes);
  std::vector<core::FlowRequest> requests;
  for (std::size_t i = 0; i + 1 < nodes.size(); i += 2) {
    requests.push_back(core::FlowRequest{.src = nodes[i], .dst = nodes[i + 1]});
  }
  for (auto _ : state) {
    auto result = core::max_min_allocate(resp.topology, requests);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ModelerMaxMinAllocate);

void BM_TopologyQueryWarm(benchmark::State& state) {
  apps::LanTestbed::Params p;
  p.hosts = static_cast<std::size_t>(state.range(0));
  p.switches = std::max<std::size_t>(2, p.hosts / 28);
  apps::LanTestbed lan(p);
  const auto nodes = lan.host_addrs(p.hosts);
  (void)lan.collector->query(nodes);
  for (auto _ : state) {
    auto resp = lan.collector->query(nodes);
    benchmark::DoNotOptimize(resp);
  }
}
BENCHMARK(BM_TopologyQueryWarm)->Arg(16)->Arg(64)->Arg(256);

void BM_AsciiEncodeDecode(benchmark::State& state) {
  apps::LanTestbed::Params p;
  p.hosts = 32;
  p.switches = 4;
  apps::LanTestbed lan(p);
  const auto resp = lan.collector->query(lan.host_addrs(32));
  for (auto _ : state) {
    auto decoded = core::ascii_decode_response(core::ascii_encode_response(resp));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_AsciiEncodeDecode);

void BM_XmlEncodeDecode(benchmark::State& state) {
  apps::LanTestbed::Params p;
  p.hosts = 32;
  p.switches = 4;
  apps::LanTestbed lan(p);
  const auto resp = lan.collector->query(lan.host_addrs(32));
  for (auto _ : state) {
    auto decoded = core::xml_decode_response(core::xml_encode_response(resp));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_XmlEncodeDecode);

}  // namespace

// Custom entry point instead of BENCHMARK_MAIN(): BenchMain adds the shared
// --metrics-out/--table-out flags (stripping them before google-benchmark
// sees the argument list).
int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
