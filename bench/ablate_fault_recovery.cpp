// Ablation: expiring quarantine vs permanent blacklisting of failed
// agents.
//
// A router flaps (hard outage for 30 simulated seconds). Both collectors
// keep answering: quarantine fail-fasts the dark agent and re-probes it
// after expiry; the blacklist variant (quarantine so long it never
// expires, the seed's dead_agents_ behavior) stays on the degraded
// virtual-switch answer forever. Columns track the trade: query cost,
// reported staleness, and whether the query still sees the true 45 Mb/s
// bottleneck capacity.
#include <memory>

#include "bench/bench_util.hpp"
#include "core/snmp_collector.hpp"
#include "net/topology.hpp"
#include "snmp/agent.hpp"

using namespace remos;

namespace {

struct Rig {
  net::Network net{"flap"};
  sim::Engine engine;
  net::NodeId a, r1, r2, b;
  std::unique_ptr<snmp::AgentRegistry> agents;
  std::unique_ptr<core::SnmpCollector> collector;

  explicit Rig(double quarantine_s) {
    a = net.add_host("a");
    r1 = net.add_router("r1");
    r2 = net.add_router("r2");
    b = net.add_host("b");
    net.connect(a, r1, 100e6);
    net.connect(r1, r2, 45e6);
    net.connect(r2, b, 100e6);
    net.finalize();
    agents = std::make_unique<snmp::AgentRegistry>(net, sim::Rng(11));
    core::SnmpCollectorConfig cfg;
    cfg.domain = {*net::Ipv4Prefix::parse("10.0.0.0/8")};
    for (const net::Segment& seg : net.segments()) {
      net::Ipv4Address gw{};
      for (auto [node, ifidx] : seg.attachments) {
        (void)ifidx;
        if (net.node(node).kind == net::NodeKind::kRouter) {
          gw = net.node(node).primary_address();
          break;
        }
      }
      cfg.subnets.push_back({seg.prefix, gw, nullptr, false, 0.0});
    }
    cfg.quarantine_s = quarantine_s;
    collector = std::make_unique<core::SnmpCollector>(engine, *agents, std::move(cfg));
  }
  [[nodiscard]] net::Ipv4Address addr(net::NodeId id) const {
    return net.node(id).primary_address();
  }
};

struct PhaseStats {
  double cost = 0.0, staleness = 0.0, accurate = 0.0;
  int queries = 0;
  void add(const core::CollectorResponse& resp) {
    cost += resp.cost_s;
    staleness += resp.max_staleness_s;
    bool saw_bottleneck = false;
    for (const core::VEdge& e : resp.topology.edges()) {
      saw_bottleneck |= (e.capacity_bps == 45e6);
    }
    accurate += saw_bottleneck ? 1.0 : 0.0;
    ++queries;
  }
};

void run(const char* label, double quarantine_s) {
  Rig rig(quarantine_s);
  const std::vector<net::Ipv4Address> nodes{rig.addr(rig.a), rig.addr(rig.b)};
  (void)rig.collector->query(nodes);  // warm discovery at t=0

  // Outage window [30, 60): phases before / during / after.
  PhaseStats phases[3];
  for (double t = 5.0; t <= 100.0; t += 5.0) {
    rig.engine.run_until(t);
    if (t == 30.0) rig.agents->find_by_node(rig.r1)->down = true;
    if (t == 60.0) rig.agents->find_by_node(rig.r1)->down = false;
    const int phase = t < 30.0 ? 0 : (t < 60.0 ? 1 : 2);
    phases[phase].add(rig.collector->query(nodes));
  }

  bench::row("%-22s %8s %12s %14s %10s", label, "phase", "avg cost", "avg staleness",
             "accuracy");
  const char* names[3] = {"before", "outage", "after"};
  for (int i = 0; i < 3; ++i) {
    const PhaseStats& p = phases[i];
    bench::row("%-22s %8s %12.3f %14.1f %9.0f%%", "", names[i], p.cost / p.queries,
               p.staleness / p.queries, 100.0 * p.accurate / p.queries);
  }
  bench::row("");
}

}  // namespace

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  bench::header("Ablation — agent-failure recovery: quarantine vs blacklist",
                "fault tolerance (par. 6.2): query cost/staleness/accuracy across an outage");
  run("quarantine 15 s", 15.0);
  run("blacklist (no expiry)", 1e18);
  bench::row("accuracy = fraction of queries reporting the true 45 Mb/s bottleneck.");
  bench::row("the quarantine collector pays brief re-probe timeouts around expiry but");
  bench::row("regains the real topology after the outage; the blacklist variant stays");
  bench::row("on the virtual-switch guess (and stale capacities) forever.");
  return 0;
}
