// Figure 4: SNMP Collector accuracy at a 2-second sampling interval.
//
// The paper's private testbed: two endpoints separated by two routers;
// Netperf generates TCP bursts of varying lengths; the figure overlays the
// bandwidth Netperf reports with the bandwidth Remos observes from octet
// counters. This harness builds that testbed, runs the same burst pattern,
// and prints both series plus agreement metrics.
#include "bench/accuracy_common.hpp"

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  remos::bench::run_accuracy_experiment(/*interval_s=*/2.0, "Fig 4", 42);
  return 0;
}
