// Ablation: octet-counter sampling interval.
//
// §5.2: shorter intervals track bandwidth changes more closely but "can
// create inconsistencies in the data and put added strain on network
// routers. In practice ... 5 seconds seems to be a good default."
// This sweep quantifies both sides: tracking error vs SNMP request load.
#include "bench/accuracy_common.hpp"

using namespace remos;

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  bench::header("Ablation — sampling interval: accuracy vs router strain",
                "two-router testbed, same Netperf burst schedule per interval");
  bench::row("%12s %18s %14s %18s", "interval", "mean |err| (Mb/s)", "correlation",
             "snmp requests");
  for (double interval : {1.0, 2.0, 5.0, 10.0, 30.0}) {
    const auto r = bench::run_accuracy_experiment(interval, "", 42, /*print=*/false);
    bench::row("%10.0f s %18.2f %14.3f %18llu", interval, r.mean_abs_error_bps / 1e6,
               r.correlation, static_cast<unsigned long long>(r.snmp_requests));
  }
  bench::row("");
  bench::row("shorter intervals track better but multiply the SNMP load on the");
  bench::row("routers; 5 s sits at the knee — the paper's default.");
  return 0;
}
