// Figure 11: application-perceived bandwidth averaged over different time
// intervals vs the bandwidth Remos reports.
//
// The same movie is downloaded from a local high-bandwidth server and from
// a remote bandwidth-limited server (paper: ~0.15 Mb/s reported). The
// client timestamps arrivals and averages over 1 s, 2 s, and 10 s windows:
// small windows fluctuate with movie content (local) or congestion
// (remote); the 10 s average of the remote download tracks the flat Remos
// line, because 10 s matches Remos's own measurement interval.
#include "apps/testbed.hpp"
#include "apps/video.hpp"
#include "bench/bench_util.hpp"

using namespace remos;

namespace {

void print_windows(const char* label, const apps::StreamResult& r, double remos_mbps) {
  for (double window : {1.0, 2.0, 10.0}) {
    const auto series = apps::windowed_bandwidth(r, window);
    std::printf("  %-7s %4.0f s window: ", label, window);
    for (double v : series) std::printf("%5.2f ", v / 1e6);
    std::printf("\n");
    if (window == 10.0) {
      sim::RunningStats s;
      for (double v : series) s.add(v);
      std::printf("  %-7s 10 s mean %.3f Mb/s vs remos-reported %.3f Mb/s\n", label,
                  s.mean() / 1e6, remos_mbps);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  apps::WanTestbed::Params params;
  params.seed = 11;
  params.probe_all_pairs = false;
  params.probe_bytes = 48 * 1024;  // small probes: the 0.22 Mb/s path is easily disturbed
  params.benchmark_period_s = 45.0;
  params.cross_period_s = 20.0;
  params.sites = {
      {"client", 2, 100e6, 80e6},
      {"local", 2, 100e6, 60e6},    // same-campus server: never the bottleneck
      {"remote", 2, 100e6, 0.22e6}, // bandwidth-limited remote server
  };
  params.site_cross_load = {0.02, 0.05, 0.10};
  apps::WanTestbed wan(params);
  wan.warm_up(120.0);

  const net::NodeId client = wan.host("client", 1);
  sim::Rng rng(33);
  const apps::Movie movie = apps::Movie::generate("fig11-movie", 35, 0.40e6, rng);

  bench::header("Fig 11 — app-measured bandwidth over 1/2/10 s windows vs Remos",
                "same movie from a local and a bandwidth-limited remote server (Mb/s)");
  std::printf("movie mean rate: %.2f Mb/s\n\n", movie.mean_rate_bps() / 1e6);

  for (const char* site : {"local", "remote"}) {
    const core::FlowInfo info =
        wan.modeler->flow_info(wan.addr(wan.host(site, 1)), wan.addr(client));
    apps::VideoServerConfig cfg;
    cfg.initial_estimate_bps = std::max(info.available_bps, 1e4);
    const apps::StreamResult r =
        apps::stream_movie(wan.engine, *wan.flows, wan.host(site, 1), client, movie, cfg);
    std::printf("%s server (remos reports %.3f Mb/s, received %zu/%zu frames):\n", site,
                info.available_bps / 1e6, r.frames_received_correctly, r.frames_total);
    print_windows(site, r, info.available_bps / 1e6);
    std::printf("\n");
  }
  std::printf("expected shape: the local download is limited by movie content (1-2 s\n"
              "averages fluctuate, never near link capacity); the remote download's\n"
              "10 s average sits on the Remos-reported line while 1-2 s averages\n"
              "fluctuate around it.\n");
  return 0;
}
