// Ablation: SNMPv2 GetBulk vs per-row GETNEXT walks.
//
// The era's collectors moved from v1-style GETNEXT chains to GetBulk to cut
// the round trips that dominate cold discovery (Fig 3's cold curve). This
// sweep measures cold-cache query time and request counts with and without
// bulk retrieval.
#include "apps/testbed.hpp"
#include "bench/bench_util.hpp"

using namespace remos;

namespace {

struct Point {
  double cost_s = 0.0;
  std::uint64_t requests = 0;
};

Point run(std::size_t hosts, bool use_bulk) {
  apps::LanTestbed::Params params;
  params.hosts = hosts;
  params.switches = std::max<std::size_t>(2, hosts / 28);
  apps::LanTestbed lan(params);

  // Rebuild both collectors with the bulk knob (bridge walks dominate the
  // cold cost; route walks matter on routed paths).
  core::BridgeCollectorConfig bcfg;
  for (net::NodeId sw : lan.switches) bcfg.switches.push_back(lan.net.node(sw).primary_address());
  bcfg.arp = apps::make_arp(lan.net);
  bcfg.use_bulk = use_bulk;
  core::BridgeCollector bridge(lan.engine, *lan.agents, std::move(bcfg));

  core::SnmpCollectorConfig scfg = lan.collector->config();
  scfg.name = use_bulk ? "bulk" : "getnext";
  scfg.use_bulk = use_bulk;
  scfg.subnets[0].bridge = &bridge;
  core::SnmpCollector collector(lan.engine, *lan.agents, scfg);

  const auto resp = collector.query(lan.host_addrs(hosts));
  return Point{resp.cost_s, collector.snmp_request_count() + bridge.client().request_count()};
}

}  // namespace

int main(int argc, char** argv) {
  remos::bench::BenchMain bench_main(argc, argv);
  bench::header("Ablation — GetBulk vs GETNEXT walks",
                "cold-cache 'query all hosts' cost on a bridged LAN");
  bench::row("%8s %16s %16s %14s %14s %10s", "hosts", "getnext cost", "bulk cost",
             "getnext reqs", "bulk reqs", "speedup");
  for (std::size_t hosts : {16u, 64u, 256u, 1024u}) {
    const Point slow = run(hosts, false);
    const Point fast = run(hosts, true);
    bench::row("%8zu %14.3f s %14.3f s %14llu %14llu %9.1fx", hosts, slow.cost_s, fast.cost_s,
               static_cast<unsigned long long>(slow.requests),
               static_cast<unsigned long long>(fast.requests), slow.cost_s / fast.cost_s);
  }
  bench::row("");
  bench::row("cold discovery is round-trip bound; GetBulk collapses per-row walks");
  bench::row("into ~24-row exchanges, flattening Fig 3's cold curve.");
  return 0;
}
