// RPS demo: fit the toolkit's predictive models to a host-load signal and
// compare their one-step prediction errors; then run the streaming
// host-load prediction system the Remos Modeler interfaces with.
//
// Build & run:  ./build/examples/host_load_prediction
#include <cstdio>

#include "core/prediction_service.hpp"
#include "net/hostload.hpp"
#include "rps/models.hpp"
#include "rps/series.hpp"

int main() {
  using namespace remos;

  sim::Rng rng(42);
  const std::vector<double> series = net::generate_host_load(4600, rng);
  const std::vector<double> train(series.begin(), series.begin() + 4000);
  const std::vector<double> test(series.begin() + 4000, series.end());
  const double signal_variance = rps::variance(train);
  std::printf("host load signal: %zu samples, variance %.4f\n\n", series.size(), signal_variance);

  std::printf("%-14s %-14s %-16s\n", "model", "1-step MSE", "vs signal var");
  for (const char* name :
       {"MEAN", "LAST", "BM32", "AR8", "AR16", "MA8", "ARMA(4,4)", "ARIMA(4,1,2)"}) {
    const auto spec = rps::ModelSpec::parse(name);
    auto model = rps::make_model(*spec);
    model->fit(train);
    double sse = 0.0;
    for (double x : test) {
      const double pred = model->predict(1).mean[0];
      sse += (x - pred) * (x - pred);
      model->step(x);
    }
    const double mse = sse / static_cast<double>(test.size());
    std::printf("%-14s %-14.4f %5.1f%% of signal variance\n", name, mse,
                100.0 * mse / signal_variance);
  }

  // Streaming host-load prediction system (sensor -> AR(16) -> evaluator).
  std::printf("\nstreaming prediction system at 1 Hz for 10 simulated minutes...\n");
  sim::Engine engine;
  core::HostLoadPredictionSystem system(engine, sim::Rng(7), /*rate_hz=*/1.0);
  system.start(600);
  engine.run_until(600.0);
  const auto& latest = system.latest();
  std::printf("predictions made: %llu, refits: %zu\n",
              static_cast<unsigned long long>(system.predictions_made()),
              system.predictor().refit_count());
  std::printf("latest 30-step forecast (load): ");
  for (std::size_t h = 0; h < latest.mean.size(); h += 5) std::printf("%.2f ", latest.mean[h]);
  std::printf("\nself-characterized 1-step error variance: %.4f (observed %.4f)\n",
              latest.variance.empty() ? 0.0 : latest.variance[0],
              system.predictor().evaluator().observed_mse());
  return 0;
}
