// Grid-style federation: two campus LANs served by *remote* collectors over
// the XML/HTTP wire protocol, federated by a Master Collector, queried
// through one Modeler — the deployment shape of the paper's Figure 2.
//
// Build & run:  ./build/examples/grid_monitoring
#include <cstdio>

#include "apps/testbed.hpp"
#include "core/modeler.hpp"
#include "core/remote.hpp"

int main() {
  using namespace remos;

  // Two independent campuses, each with its own simulation-local stack.
  apps::LanTestbed::Params pa;
  pa.hosts = 6;
  pa.switches = 2;
  apps::LanTestbed campus_a(pa);

  apps::LanTestbed::Params pb;
  pb.hosts = 4;
  pb.switches = 1;
  pb.seed = 99;
  pb.site_prefix = "10.2.0.0/16";  // disjoint address space from campus A
  apps::LanTestbed campus_b(pb);

  // Expose each campus SNMP collector through the XML-over-HTTP protocol,
  // exactly as a remote site would be reached across the Internet.
  core::CollectorServer server_a(*campus_a.collector, core::ProtocolKind::kXml);
  core::CollectorServer server_b(*campus_b.collector, core::ProtocolKind::kXml);
  core::RemoteCollector remote_a("campusA", campus_a.collector->responsibility(),
                                 core::loopback_transport(server_a), core::ProtocolKind::kXml);
  core::RemoteCollector remote_b("campusB", campus_b.collector->responsibility(),
                                 core::loopback_transport(server_b), core::ProtocolKind::kXml);

  core::MasterCollector master(core::MasterCollectorConfig{"grid-master", 0.002, true});
  master.add_site(core::MasterCollector::Site{"campusA", &remote_a, {}});
  master.add_site(core::MasterCollector::Site{"campusB", &remote_b, {}});

  core::Modeler modeler(master);

  std::printf("directory entries at the master:\n");
  for (const auto& entry : master.directory().entries()) {
    std::printf("  %-18s -> %s\n", entry.prefix.to_string().c_str(),
                entry.collector->name().c_str());
  }

  // Query campus A's hosts through the full stack:
  // modeler -> master -> XML/HTTP -> remote SNMP collector.
  const auto nodes = campus_a.host_addrs(3);
  std::printf("\ntopology for 3 campus-A hosts (via XML/HTTP remote collector):\n");
  const auto topo = modeler.topology_query(nodes);
  std::printf("%s", topo.to_text().c_str());
  std::printf("requests handled by campus-A server: %llu\n",
              static_cast<unsigned long long>(server_a.requests_handled()));

  // Measurement histories travel over the XML protocol — the capability
  // the paper's protocol transition was after.
  campus_a.flows->start(net::FlowSpec{
      .src = campus_a.hosts[0], .dst = campus_a.hosts[1], .demand_bps = 25e6});
  campus_a.engine.advance(5.0 * 70);
  (void)campus_a.collector->query(nodes);

  std::printf("\nhistories fetched over the wire:\n");
  const auto resp = remote_a.query(nodes);
  for (const auto& e : resp.topology.edges()) {
    const sim::MeasurementHistory* hist = remote_a.history(e.id);
    if (hist != nullptr && !hist->empty() && hist->latest().value > 1e6) {
      std::printf("  %-40s %4zu samples, latest %.1f Mb/s\n", e.id.c_str(), hist->size(),
                  hist->latest().value / 1e6);
    }
  }
  return 0;
}
