// Wireless monitoring (the paper's §6.2 in-progress work): stations roam
// between 802.11 access points while the Wireless Collector tracks
// associations, per-AP load, and the bandwidth each station can expect.
//
// Build & run:  ./build/examples/wireless_roaming
#include <cstdio>

#include "core/wireless_collector.hpp"
#include "net/flows.hpp"

int main() {
  using namespace remos;

  // Distribution switch with three APs; six stations start spread across
  // them; one laptop walks down the hallway, re-associating as it goes.
  net::Network net("wlan");
  sim::Engine engine;
  const auto sw = net.add_switch("dist-sw");
  std::vector<net::NodeId> aps;
  for (int i = 0; i < 3; ++i) {
    aps.push_back(net.add_hub("ap" + std::to_string(i), 11e6));
    net.connect(sw, aps.back(), 100e6);
  }
  std::vector<net::NodeId> stations;
  for (int i = 0; i < 6; ++i) {
    stations.push_back(net.add_host("laptop" + std::to_string(i)));
    net.connect(stations.back(), aps[static_cast<std::size_t>(i) % 3], 11e6);
  }
  const auto server = net.add_host("server");
  net.connect(server, sw, 100e6);
  net.finalize();
  net::FlowEngine flows(engine, net);

  core::WirelessCollectorConfig cfg;
  cfg.domain = {net.segment(0).prefix};
  cfg.association_poll_s = 2.0;
  core::WirelessCollector collector(engine, net, aps, std::move(cfg));

  auto report = [&] {
    std::printf("t=%5.0fs  ", engine.now());
    for (const auto ap : aps) {
      std::printf("%s:%zu stations  ", net.node(ap).name.c_str(), collector.station_count(ap));
    }
    const auto bw = collector.expected_bandwidth(net.node(stations[0]).primary_address());
    std::printf("| laptop0 expects %.1f Mb/s at %s\n", bw.value_or(0.0) / 1e6,
                net.node(collector.association_of(net.node(stations[0]).primary_address()))
                    .name.c_str());
  };

  std::printf("laptop0 roams ap0 -> ap1 -> ap2 while the collector polls every 2 s\n\n");
  report();
  engine.advance(10.0);
  net.move_host(stations[0], aps[1], 11e6);
  engine.advance(4.0);  // poll notices the handoff
  report();
  engine.advance(10.0);
  net.move_host(stations[0], aps[2], 11e6);
  engine.advance(4.0);
  report();
  std::printf("\nhandoffs observed: %llu\n",
              static_cast<unsigned long long>(collector.handoff_count()));

  // A topology query renders each AP as a capacity-annotated virtual switch.
  const auto resp = collector.query({net.node(stations[0]).primary_address(),
                                     net.node(stations[1]).primary_address()});
  std::printf("\nwireless topology query:\n%s", resp.topology.to_text().c_str());
  return 0;
}
