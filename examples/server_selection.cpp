// Mirrored-server selection (the paper's §5.4 application): a client at one
// site picks which of several replica servers to download a 3 MB file from,
// using Remos flow queries, then validates the choice by downloading from
// every replica.
//
// Build & run:  ./build/examples/server_selection
#include <cstdio>

#include "apps/mirror.hpp"
#include "apps/testbed.hpp"

int main() {
  using namespace remos;

  // Client at "cmu"; replicas at four sites with different WAN access
  // capacities and different cross-traffic load.
  apps::WanTestbed::Params params;
  params.sites = {
      {"cmu", 2, 100e6, 20e6},       // client site
      {"harvard", 2, 100e6, 6e6},
      {"isi", 2, 100e6, 5e6},
      {"nwu", 2, 100e6, 10e6},
      {"eth", 2, 100e6, 4e6},
  };
  params.site_cross_load = {0.1, 0.4, 0.3, 0.2, 0.5};
  apps::WanTestbed wan(params);
  wan.warm_up(90.0);  // cross traffic + periodic benchmarks running

  std::vector<apps::MirrorServer> servers;
  for (const char* site : {"harvard", "isi", "nwu", "eth"}) {
    servers.push_back(apps::MirrorServer{site, wan.host(site, 1), wan.addr(wan.host(site, 1))});
  }
  apps::MirrorClient client(wan.engine, *wan.flows, *wan.modeler, wan.host("cmu", 1),
                            wan.addr(wan.host("cmu", 1)), servers);

  std::printf("downloading a 3 MB file; Remos ranks the replicas first\n\n");
  for (int trial = 0; trial < 3; ++trial) {
    const apps::MirrorTrialResult r = client.run_trial();
    std::printf("trial %d\n", trial + 1);
    for (std::size_t rank = 0; rank < r.remos_ranking.size(); ++rank) {
      const std::size_t idx = r.remos_ranking[rank];
      std::printf("  #%zu %-8s remos %6.2f Mb/s   achieved %6.2f Mb/s%s\n", rank + 1,
                  servers[idx].name.c_str(), r.remos_bandwidth_bps[idx] / 1e6,
                  r.achieved_bps[idx] / 1e6, idx == r.actual_best ? "  <- actual best" : "");
    }
    std::printf("  remos picked the best server: %s  (effective %.2f Mb/s incl. %.0f ms query)\n\n",
                r.remos_correct ? "YES" : "no", r.effective_bps / 1e6,
                r.remos_query_time_s * 1e3);
    wan.engine.advance(30.0);  // let the network state drift between trials
  }
  return 0;
}
