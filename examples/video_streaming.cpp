// Adaptive video streaming (the paper's §5.5 application): before each
// download the client measures available bandwidth to every video server
// via Remos, streams from the best one, and the server adapts by dropping
// low-priority frames to fit the measured bandwidth.
//
// Build & run:  ./build/examples/video_streaming
#include <algorithm>
#include <cstdio>

#include "apps/testbed.hpp"
#include "apps/video.hpp"

int main() {
  using namespace remos;

  apps::WanTestbed::Params params;
  params.sites = {
      {"client-site", 2, 100e6, 50e6},
      {"eth", 2, 100e6, 40e6},   // local-ish: order of magnitude faster
      {"epfl", 2, 100e6, 4e6},
      {"cmu", 2, 100e6, 0.8e6},
  };
  params.site_cross_load = {0.05, 0.1, 0.3, 0.4};
  apps::WanTestbed wan(params);
  wan.warm_up(60.0);

  sim::Rng rng(2001);
  const apps::Movie movie = apps::Movie::generate("demo-movie", 30, 0.9e6, rng);
  std::printf("movie: %zu s, %zu frames, mean rate %.2f Mb/s\n\n", movie.chunks.size(),
              movie.frame_count(), movie.mean_rate_bps() / 1e6);

  const net::NodeId client = wan.host("client-site", 1);
  const auto client_addr = wan.addr(client);

  // Remos query: available bandwidth to every server.
  struct Candidate {
    const char* site;
    double remos_bps;
  };
  std::vector<Candidate> candidates{{"eth", 0}, {"epfl", 0}, {"cmu", 0}};
  for (auto& c : candidates) {
    const core::FlowInfo info = wan.modeler->flow_info(wan.addr(wan.host(c.site, 1)), client_addr);
    c.remos_bps = info.available_bps;
    std::printf("remos: %-5s -> client  %6.2f Mb/s available\n", c.site, c.remos_bps / 1e6);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.remos_bps > b.remos_bps; });
  std::printf("\nstreaming from every server, best first:\n");

  for (const Candidate& c : candidates) {
    apps::VideoServerConfig cfg;
    cfg.initial_estimate_bps = c.remos_bps;
    const apps::StreamResult r = apps::stream_movie(wan.engine, *wan.flows,
                                                    wan.host(c.site, 1), client, movie, cfg);
    std::printf("  %-5s sent %4zu/%4zu frames, received correctly %4zu (%.0f%%)\n", c.site,
                r.frames_sent, r.frames_total, r.frames_received_correctly,
                100.0 * static_cast<double>(r.frames_received_correctly) /
                    static_cast<double>(r.frames_total));
  }
  std::printf("\nthe Remos-chosen server delivers the most frames when bandwidth "
              "is the binding constraint.\n");
  return 0;
}
