// Quickstart: deploy Remos on a small switched campus LAN, ask for the
// topology connecting four hosts, then ask what bandwidth a new flow
// between two of them can expect while cross traffic runs.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "apps/testbed.hpp"
#include "core/modeler.hpp"

int main() {
  using namespace remos;

  // A campus LAN: router -- sw0 -- sw1 -- sw2, 12 hosts spread across the
  // switches, SNMP agents on every router/switch, Bridge + SNMP collectors.
  apps::LanTestbed::Params params;
  params.hosts = 12;
  params.switches = 3;
  apps::LanTestbed lan(params);

  core::Modeler modeler(*lan.collector);

  // --- Topology query -----------------------------------------------------
  const auto nodes = lan.host_addrs(4);
  std::printf("== topology query for 4 hosts ==\n");
  const core::VirtualTopology topo = modeler.topology_query(nodes);
  std::printf("%s", topo.to_text().c_str());
  std::printf("(switch chain collapsed into a virtual switch; query cost %.3f s)\n\n",
              modeler.last_query_cost_s());

  // --- Flow query under load ----------------------------------------------
  // 60 Mb/s of cross traffic h2 -> h3 shares h3's access link.
  lan.flows->start(net::FlowSpec{
      .src = lan.hosts[2], .dst = lan.hosts[3], .demand_bps = 60e6});
  lan.engine.advance(11.0);  // let two 5 s monitoring polls observe it

  std::printf("== flow queries ==\n");
  const core::FlowInfo quiet = modeler.flow_info(lan.addr(lan.hosts[0]), lan.addr(lan.hosts[1]));
  std::printf("h0 -> h1 (quiet path):     %6.1f Mb/s available\n", quiet.available_bps / 1e6);
  const core::FlowInfo busy = modeler.flow_info(lan.addr(lan.hosts[0]), lan.addr(lan.hosts[3]));
  std::printf("h0 -> h3 (loaded access):  %6.1f Mb/s available (60 Mb/s cross traffic seen)\n",
              busy.available_bps / 1e6);

  // --- Prediction ----------------------------------------------------------
  lan.engine.advance(5.0 * 70);  // accumulate measurement history
  const auto pred = modeler.predict_flow(
      core::FlowRequest{.src = lan.addr(lan.hosts[0]), .dst = lan.addr(lan.hosts[3])}, 10);
  if (pred) {
    std::printf("\n== prediction (model %s) ==\n", pred->model_name.c_str());
    std::printf("h0 -> h3 available bandwidth, next 10 polls: ");
    for (double v : pred->mean_bps) std::printf("%.1f ", v / 1e6);
    std::printf("Mb/s\n");
  }
  return 0;
}
